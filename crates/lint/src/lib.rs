//! Static network verification beyond the built-in topology checks.
//!
//! `kpn-core` captures advisory topology metadata as a network is wired
//! (which process owns which endpoint, declared stream contracts, SDF
//! rates) and runs the structural checks L001–L004 itself. This crate adds
//! the analyses that need the rest of the workspace:
//!
//! * **L005** — SDF-checkable subgraphs. Channels whose endpoints both
//!   declare per-firing token rates form synchronous-dataflow regions;
//!   [`check_sdf`] hands each region to `kpn-sdf`'s balance equations and
//!   reports inconsistent rates and insufficient initial tokens on
//!   feedback edges. Call [`install`] once to hook this pass into every
//!   network's lint run (startup and after each dynamic reconfiguration).
//! * **L006 + capacity synthesis** — the [`synth`] module computes
//!   minimal safe per-channel capacities for every statically-rated
//!   region from the periodic schedule's per-edge bounds; channels whose
//!   current size cannot carry one period report L006 (advisory) with a
//!   machine-applicable [`kpn_core::Fix::SetCapacity`] attached.
//!   `NetworkConfig::synthesize_capacities` applies those fixes at start;
//!   `kpn-lint fix` writes them back into serialized partitions.
//! * **Spec checking** — [`check_specs`] validates serialized
//!   [`kpn_net::GraphSpec`] partitions *before* deployment: local
//!   channel wiring, zero capacities, and remote endpoint tokens that
//!   dangle across partition files; [`apply_spec_fixes`] rewrites a
//!   partition in place from the synthesized fixes. The `kpn-lint` binary
//!   wraps both for use in build pipelines (`check` / `fix --check`).
//!
//! Everything here is static: no network is started, no process runs, and
//! the advisory metadata never changes runtime behaviour.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::Arc;

use kpn_core::{Diagnostic, TopologySnapshot};

mod spec;
pub mod synth;

pub use spec::{apply_spec_fixes, check_specs, synthesize_spec_fixes};
pub use synth::synthesize_capacities;

/// A node of the derived process graph: one declared process.
#[derive(Debug, Clone)]
pub struct ModelNode {
    /// Process tag id (as in [`TopologySnapshot`]).
    pub id: u64,
    /// Declared process name.
    pub name: String,
}

/// An edge of the derived process graph: one channel attached to a
/// declared process on both sides.
#[derive(Debug, Clone)]
pub struct ModelEdge {
    /// Channel id (matches the monitor's channel report).
    pub channel: u64,
    /// Tag id of the producing process.
    pub from: u64,
    /// Tag id of the consuming process.
    pub to: u64,
    /// Channel capacity in bytes.
    pub capacity: usize,
    /// Bytes already buffered when the snapshot was taken — initial
    /// tokens, in SDF terms.
    pub buffered: usize,
    /// Declared element size in bytes, if either side declared one.
    pub item_size: Option<usize>,
    /// Declared (producer, consumer) rates in tokens per firing, when
    /// *both* sides declared one — the edge is then SDF-checkable.
    pub rates: Option<(u64, u64)>,
}

/// A process-level view of a [`TopologySnapshot`]: declared processes as
/// nodes, fully-attributed channels as edges. This is the graph the L005
/// pass analyses; it is public so other tools can build passes on it.
#[derive(Debug, Clone, Default)]
pub struct GraphModel {
    /// Declared processes.
    pub nodes: Vec<ModelNode>,
    /// Channels attached to declared processes on both sides.
    pub edges: Vec<ModelEdge>,
}

impl GraphModel {
    /// Derives the process graph from a topology snapshot. Channels whose
    /// sides are not both attached to declared processes (external feeds,
    /// mid-splice endpoints) are omitted — they cannot participate in a
    /// static rate analysis.
    pub fn from_snapshot(snap: &TopologySnapshot) -> Self {
        let nodes = snap
            .processes
            .iter()
            .map(|p| ModelNode {
                id: p.id,
                name: p.name.clone(),
            })
            .collect();
        let mut edges = Vec::new();
        for ch in &snap.channels {
            let (Some(from), Some(to)) = (ch.writer.process, ch.reader.process) else {
                continue;
            };
            edges.push(ModelEdge {
                channel: ch.id,
                from,
                to,
                capacity: ch.capacity,
                buffered: ch.buffered,
                item_size: ch.writer.item_size.or(ch.reader.item_size),
                rates: match (ch.writer.rate, ch.reader.rate) {
                    (Some(p), Some(c)) => Some((p, c)),
                    _ => None,
                },
            });
        }
        GraphModel { nodes, edges }
    }

    /// The name of a node, when it is known.
    pub fn node_name(&self, id: u64) -> Option<&str> {
        self.nodes
            .iter()
            .find(|n| n.id == id)
            .map(|n| n.name.as_str())
    }
}

/// Connected components (undirected) of the SDF-checkable edge subset.
/// Returns one vector of edge indices (into `model.edges`) per component.
pub(crate) fn sdf_components(model: &GraphModel) -> Vec<Vec<usize>> {
    // Union-find over process tag ids.
    let mut parent: HashMap<u64, u64> = HashMap::new();
    fn find(parent: &mut HashMap<u64, u64>, x: u64) -> u64 {
        let p = *parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let root = find(parent, p);
        parent.insert(x, root);
        root
    }
    for e in &model.edges {
        if e.rates.is_none() {
            continue;
        }
        let (a, b) = (find(&mut parent, e.from), find(&mut parent, e.to));
        if a != b {
            parent.insert(a, b);
        }
    }
    let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, e) in model.edges.iter().enumerate() {
        if e.rates.is_none() {
            continue;
        }
        let root = find(&mut parent, e.from);
        groups.entry(root).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    out.sort_by_key(|g| g.first().copied());
    out
}

/// Checks every SDF-checkable region of the graph against the balance
/// equations (L005) and its current capacities against the synthesized
/// schedule bounds (L006, with [`kpn_core::Fix::SetCapacity`] fixes
/// attached). A region is the connected subgraph of channels whose
/// endpoints *both* declared per-firing rates; processes with
/// data-dependent consumption (`Modulo`, `Sift`, `Guard`, merges) declare
/// no rates and transparently break regions apart, so only genuinely
/// synchronous subgraphs are analysed.
pub fn check_sdf(snap: &TopologySnapshot) -> Vec<Diagnostic> {
    let model = GraphModel::from_snapshot(snap);
    let mut out = Vec::new();
    for component in sdf_components(&model) {
        synth::check_component(&model, &component, &mut out);
    }
    out
}

/// Registers the SDF pass (L005 + the L006 capacity synthesis) with
/// `kpn-core`'s lint so every network run — startup and each dynamic
/// reconfiguration — includes the analysis, and
/// `NetworkConfig::synthesize_capacities` sees the synthesized fixes.
/// Idempotent: repeated calls install the pass once.
pub fn install() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        kpn_core::register_lint_pass(Arc::new(|snap: &TopologySnapshot| check_sdf(snap)));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpn_core::{ChannelShape, DiagCode, EndpointShape, Fix, ProcessShape, SideState};

    fn endpoint(process: u64, rate: Option<u64>, size: Option<usize>) -> EndpointShape {
        EndpointShape {
            state: SideState::Attached,
            process: Some(process),
            framing: None,
            item_type: None,
            item_size: size,
            rate,
        }
    }

    fn process(id: u64, name: &str) -> ProcessShape {
        ProcessShape {
            id,
            name: name.into(),
            endpoints: 2,
        }
    }

    fn channel(
        id: u64,
        capacity: usize,
        from: (u64, Option<u64>),
        to: (u64, Option<u64>),
    ) -> ChannelShape {
        ChannelShape {
            id,
            capacity,
            buffered: 0,
            writer: endpoint(from.0, from.1, Some(8)),
            reader: endpoint(to.0, to.1, Some(8)),
        }
    }

    #[test]
    fn consistent_rates_pass() {
        let snap = TopologySnapshot {
            channels: vec![channel(0, 64, (1, Some(1)), (2, Some(1)))],
            processes: vec![process(1, "src"), process(2, "sink")],
            fully_declared: true,
        };
        assert!(check_sdf(&snap).is_empty());
    }

    #[test]
    fn inconsistent_rates_flagged() {
        // a -2-> b -2-> a with 1-token consumption forms an inconsistent
        // loop: every firing of each actor doubles the tokens in flight.
        let snap = TopologySnapshot {
            channels: vec![
                channel(0, 64, (1, Some(2)), (2, Some(1))),
                channel(1, 64, (2, Some(2)), (1, Some(1))),
            ],
            processes: vec![process(1, "a"), process(2, "b")],
            fully_declared: true,
        };
        let diags = check_sdf(&snap);
        assert!(
            diags.iter().any(|d| d.code == DiagCode::L005),
            "expected L005, got {diags:?}"
        );
    }

    #[test]
    fn undeclared_rate_breaks_region() {
        // The middle process declares no rates, so the two channels are
        // independent single-edge regions and both check out.
        let snap = TopologySnapshot {
            channels: vec![
                channel(0, 64, (1, Some(2)), (2, None)),
                channel(1, 64, (2, None), (3, Some(1))),
            ],
            processes: vec![process(1, "a"), process(2, "merge"), process(3, "c")],
            fully_declared: true,
        };
        assert!(check_sdf(&snap).is_empty());
    }

    #[test]
    fn undersized_channel_reports_exact_capacity() {
        // Producer emits 4 tokens per firing into a 8-byte channel: one
        // period needs 4 × 8 = 32 bytes. The finding is the advisory L006
        // with the synthesized size attached as a machine-applicable fix.
        let snap = TopologySnapshot {
            channels: vec![channel(0, 8, (1, Some(4)), (2, Some(4)))],
            processes: vec![process(1, "burst"), process(2, "sink")],
            fully_declared: true,
        };
        let diags = check_sdf(&snap);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::L006);
        assert!(diags[0].message.contains("32"), "{}", diags[0].message);
        assert_eq!(
            diags[0].fixes,
            vec![Fix::SetCapacity {
                channel: 0,
                current: 8,
                suggested: 32,
            }]
        );
    }

    #[test]
    fn adequately_sized_burst_region_is_clean() {
        let snap = TopologySnapshot {
            channels: vec![channel(0, 32, (1, Some(4)), (2, Some(4)))],
            processes: vec![process(1, "burst"), process(2, "sink")],
            fully_declared: true,
        };
        assert!(check_sdf(&snap).is_empty());
    }

    #[test]
    fn feedback_without_initial_tokens_flagged() {
        // A rate-consistent loop with no initial tokens cannot fire at all.
        let snap = TopologySnapshot {
            channels: vec![
                channel(0, 64, (1, Some(1)), (2, Some(1))),
                channel(1, 64, (2, Some(1)), (1, Some(1))),
            ],
            processes: vec![process(1, "a"), process(2, "b")],
            fully_declared: true,
        };
        let diags = check_sdf(&snap);
        assert!(
            diags
                .iter()
                .any(|d| d.code == DiagCode::L005 && d.message.contains("initial tokens")),
            "expected initial-token L005, got {diags:?}"
        );
    }

    #[test]
    fn feedback_with_initial_tokens_passes() {
        let mut loop_back = channel(1, 64, (2, Some(1)), (1, Some(1)));
        loop_back.buffered = 8; // one 8-byte token of delay
        let snap = TopologySnapshot {
            channels: vec![channel(0, 64, (1, Some(1)), (2, Some(1))), loop_back],
            processes: vec![process(1, "a"), process(2, "b")],
            fully_declared: true,
        };
        assert!(check_sdf(&snap).is_empty());
    }
}
