//! Capacity synthesis for statically-rated (SDF) regions.
//!
//! The L005 pass *diagnoses* rate violations; this module goes one step
//! further and *synthesizes* the answer: for every SDF-checkable region of
//! a [`GraphModel`] it computes the minimal safe per-channel capacities
//! from the repetition vector and the periodic schedule's per-edge peaks
//! (`kpn_sdf::minimal_capacities`), verifies the region's *current*
//! capacities with a capacity-bounded schedule simulation
//! ([`Schedule::build_bounded`]), and — when the current sizes cannot
//! carry one period — emits an L006 diagnostic per undersized channel with
//! a machine-applicable [`Fix::SetCapacity`] attached.
//!
//! Applying the fixes is safe by construction: a Kahn process cannot
//! observe its channels' capacities, so growing them never changes any
//! channel history (determinacy is capacity-blind); it only removes the
//! artificial-deadlock episodes Parks' monitor would otherwise have to
//! resolve at run time. Synthesis deliberately *refuses* what it cannot
//! prove: channels touching opaque (rate-undeclared) processes break
//! regions apart and get no suggestion beyond the L003 cycle-sum fallback,
//! and dynamically reconfigured graphs are only synthesized for their
//! startup topology — a graph that rewires itself mid-run has no static
//! schedule to bound.

use std::collections::HashMap;

use kpn_core::{DiagCode, Diagnostic, Fix};
use kpn_sdf::graph::{ActorId, EdgeId, SdfError, SdfGraph};
use kpn_sdf::schedule::Schedule;

use crate::GraphModel;

/// One SDF-checkable region lifted into a `kpn-sdf` graph. `edges` holds
/// indices into the model's edge list, parallel to the graph's edges.
struct Region {
    graph: SdfGraph,
    actor_of: HashMap<u64, ActorId>,
    edge_ids: Vec<EdgeId>,
    edges: Vec<usize>,
}

/// The byte size of one token on a model edge (1 when undeclared).
fn token_of(model: &GraphModel, edge: usize) -> usize {
    model.edges[edge].item_size.unwrap_or(1).max(1)
}

/// Lifts one connected component of rate-declared edges into a `kpn-sdf`
/// graph. Initial tokens are the bytes already buffered in each channel,
/// in units of the declared element size.
fn build_region(model: &GraphModel, edges: &[usize]) -> Region {
    let mut g = SdfGraph::new();
    let mut actor_of: HashMap<u64, ActorId> = HashMap::new();
    let mut edge_ids: Vec<EdgeId> = Vec::new();
    for &i in edges {
        let e = &model.edges[i];
        for node in [e.from, e.to] {
            actor_of
                .entry(node)
                .or_insert_with(|| g.actor(model.node_name(node).unwrap_or("?").to_string()));
        }
        let (prod, cons) = e.rates.expect("component edges are SDF-checkable");
        let delays = (e.buffered / token_of(model, i)) as u64;
        edge_ids.push(g.edge_with_delays(actor_of[&e.from], actor_of[&e.to], prod, cons, delays));
    }
    Region {
        graph: g,
        actor_of,
        edge_ids,
        edges: edges.to_vec(),
    }
}

/// Checks one SDF region: rate consistency and initial-token sufficiency
/// report as L005; a region whose *current* capacities cannot carry one
/// period reports L006 per undersized channel, each carrying the
/// synthesized [`Fix::SetCapacity`].
pub(crate) fn check_component(model: &GraphModel, edges: &[usize], out: &mut Vec<Diagnostic>) {
    let region = build_region(model, edges);
    match Schedule::build(&region.graph) {
        Err(SdfError::Inconsistent { edge }) => {
            let model_edge = region
                .edge_ids
                .iter()
                .position(|&id| id == edge)
                .map(|pos| &model.edges[region.edges[pos]]);
            out.push(Diagnostic {
                code: DiagCode::L005,
                message: match model_edge {
                    Some(e) => format!(
                        "SDF balance equations are inconsistent at channel {}: declared \
                         rates {}→{} admit no repetition vector; tokens accumulate or \
                         starve under every schedule",
                        e.channel,
                        e.rates.unwrap().0,
                        e.rates.unwrap().1,
                    ),
                    None => "SDF balance equations are inconsistent".to_string(),
                },
                process: model_edge
                    .and_then(|e| model.node_name(e.from))
                    .map(String::from),
                channel: model_edge.map(|e| e.channel),
                fixes: Vec::new(),
            });
        }
        Err(SdfError::Deadlocked { stuck }) => {
            let names: Vec<&str> = stuck
                .iter()
                .filter_map(|a| {
                    let idx = region
                        .actor_of
                        .iter()
                        .find(|(_, &v)| v == *a)
                        .map(|(k, _)| *k);
                    idx.and_then(|id| model.node_name(id))
                })
                .collect();
            out.push(Diagnostic {
                code: DiagCode::L005,
                message: format!(
                    "SDF region is rate-consistent but cannot complete one period from \
                     its initial tokens; stuck actors: {}",
                    if names.is_empty() {
                        "?".to_string()
                    } else {
                        names.join(", ")
                    }
                ),
                process: names.first().map(|s| s.to_string()),
                channel: None,
                fixes: Vec::new(),
            });
        }
        // Malformed regions (zero rates) are declaration errors we cannot
        // attribute; Disconnected cannot occur — components are connected
        // by construction.
        Err(_) => {}
        Ok(schedule) => {
            // Verify the *current* capacities with a bounded simulation:
            // one channel can legitimately sit below the eager schedule's
            // peak if another order fits, so undersizing is only reported
            // when no capacity-respecting eager period completes.
            let caps: Vec<u64> = region
                .edges
                .iter()
                .map(|&i| (model.edges[i].capacity / token_of(model, i)) as u64)
                .collect();
            if Schedule::build_bounded(&region.graph, &caps).is_ok() {
                return;
            }
            let needs = schedule.channel_capacities();
            for (pos, &i) in region.edges.iter().enumerate() {
                let e = &model.edges[i];
                let token = token_of(model, i);
                let need_bytes = (needs[pos] as usize).saturating_mul(token);
                if e.capacity < need_bytes {
                    out.push(Diagnostic {
                        code: DiagCode::L006,
                        message: format!(
                            "static region runs below synthesized capacity: channel {} \
                             holds {} bytes but the periodic schedule needs {} \
                             ({} tokens of {token} bytes); until resized the region \
                             falls back to runtime deadlock-detect-and-grow",
                            e.channel, e.capacity, need_bytes, needs[pos]
                        ),
                        process: model.node_name(e.from).map(String::from),
                        channel: Some(e.channel),
                        fixes: vec![Fix::SetCapacity {
                            channel: e.channel,
                            current: e.capacity,
                            suggested: need_bytes,
                        }],
                    });
                }
            }
        }
    }
}

/// Computes every [`Fix::SetCapacity`] the SDF analysis can synthesize for
/// a model: the minimal safe capacities for each statically-rated region
/// whose current sizes cannot carry one period. Regions that already fit
/// (and regions that fail to schedule at all — there is nothing sound to
/// suggest) contribute no fixes.
pub fn synthesize_capacities(model: &GraphModel) -> Vec<Fix> {
    let mut diags = Vec::new();
    for component in crate::sdf_components(model) {
        check_component(model, &component, &mut diags);
    }
    diags.into_iter().flat_map(|d| d.fixes).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelEdge, ModelNode};

    fn model(edges: Vec<ModelEdge>) -> GraphModel {
        let mut ids: Vec<u64> = edges.iter().flat_map(|e| [e.from, e.to]).collect();
        ids.sort_unstable();
        ids.dedup();
        GraphModel {
            nodes: ids
                .into_iter()
                .map(|id| ModelNode {
                    id,
                    name: format!("p{id}"),
                })
                .collect(),
            edges,
        }
    }

    fn edge(channel: u64, from: u64, to: u64, capacity: usize, rates: (u64, u64)) -> ModelEdge {
        ModelEdge {
            channel,
            from,
            to,
            capacity,
            buffered: 0,
            item_size: Some(8),
            rates: Some(rates),
        }
    }

    #[test]
    fn fitting_region_synthesizes_nothing() {
        let m = model(vec![edge(0, 1, 2, 64, (1, 1))]);
        assert!(synthesize_capacities(&m).is_empty());
    }

    #[test]
    fn burst_producer_gets_exact_fix() {
        // 4-token burst into an 8-byte (1-token) channel: the bounded
        // simulation wedges, and the synthesized size is the schedule
        // bound 4 × 8 = 32 bytes.
        let m = model(vec![edge(0, 1, 2, 8, (4, 4))]);
        let fixes = synthesize_capacities(&m);
        assert_eq!(
            fixes,
            vec![Fix::SetCapacity {
                channel: 0,
                current: 8,
                suggested: 32,
            }]
        );
    }

    #[test]
    fn single_token_capacity_suffices_for_rate_one_chain() {
        // Every capacity holds exactly one token: a rate-1 chain fires
        // alternately and never needs more, so no fix even though the
        // eager unbounded peak equals the capacity.
        let m = model(vec![edge(0, 1, 2, 8, (1, 1)), edge(1, 2, 3, 8, (1, 1))]);
        assert!(synthesize_capacities(&m).is_empty());
    }

    #[test]
    fn unschedulable_region_refuses_to_synthesize() {
        // Inconsistent rates: there is no sound capacity to suggest.
        let m = model(vec![edge(0, 1, 2, 8, (2, 1)), edge(1, 2, 1, 8, (2, 1))]);
        assert!(synthesize_capacities(&m).is_empty());
    }
}
