//! Checks — and repairs — serialized graph partitions before deployment.
//!
//! ```text
//! kpn-lint [check] [--format text|json] <spec-file>...
//! kpn-lint fix [--check] [--format text|json] <spec-file>...
//! ```
//!
//! Each file argument is a `kpn-codec`-encoded [`kpn_net::GraphSpec`]
//! (the bytes a deployment pipeline would ship to a `kpn-server`). All
//! files are checked together as one deployment, so remote endpoint
//! tokens must pair up *across* files.
//!
//! `check` (the default) reports findings. `fix` applies the synthesized
//! capacity fixes in place: files with no applicable fixes are left
//! byte-identical (they are never rewritten), so running `fix` twice is a
//! no-op. `fix --check` applies nothing and fails if a fix *would* apply —
//! the CI idempotence gate.
//!
//! `--format json` emits a machine-readable report on stdout instead of
//! the human text on stderr.
//!
//! Exit status: 0 clean / nothing to fix, 1 findings reported or fixes
//! pending (`fix --check`), 2 usage or read error.

use std::process::ExitCode;

use kpn_core::{Diagnostic, Fix};
use kpn_net::GraphSpec;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
}

fn usage() -> ExitCode {
    eprintln!("usage: kpn-lint [check] [--format text|json] <spec-file>...");
    eprintln!("       kpn-lint fix [--check] [--format text|json] <spec-file>...");
    eprintln!("checks kpn-codec encoded GraphSpec partitions as one deployment;");
    eprintln!("`fix` rewrites partitions with synthesized capacity fixes applied");
    ExitCode::from(2)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fix_json(f: &Fix) -> String {
    let Fix::SetCapacity {
        channel,
        current,
        suggested,
    } = f;
    format!(
        "{{\"kind\":\"set_capacity\",\"channel\":{channel},\"current\":{current},\
         \"suggested\":{suggested}}}"
    )
}

fn diag_json(d: &Diagnostic) -> String {
    let process = match &d.process {
        Some(p) => format!("\"{}\"", json_escape(p)),
        None => "null".to_string(),
    };
    let channel = match d.channel {
        Some(c) => c.to_string(),
        None => "null".to_string(),
    };
    let fixes: Vec<String> = d.fixes.iter().map(fix_json).collect();
    format!(
        "{{\"code\":\"{}\",\"message\":\"{}\",\"process\":{process},\"channel\":{channel},\
         \"fixes\":[{}]}}",
        d.code,
        json_escape(&d.message),
        fixes.join(",")
    )
}

fn load(paths: &[String]) -> Result<Vec<(String, GraphSpec)>, ExitCode> {
    let mut specs = Vec::new();
    for path in paths {
        let bytes = std::fs::read(path).map_err(|e| {
            eprintln!("kpn-lint: cannot read {path}: {e}");
            ExitCode::from(2)
        })?;
        let spec = kpn_codec::from_bytes::<GraphSpec>(&bytes).map_err(|e| {
            eprintln!("kpn-lint: {path} is not a valid graph spec: {e}");
            ExitCode::from(2)
        })?;
        specs.push((path.clone(), spec));
    }
    Ok(specs)
}

fn run_check(files: &[String], format: Format) -> ExitCode {
    let specs = match load(files) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let diags = kpn_lint::check_specs(&specs);
    match format {
        Format::Json => {
            let body: Vec<String> = diags.iter().map(diag_json).collect();
            println!(
                "{{\"partitions\":{},\"diagnostics\":[{}]}}",
                specs.len(),
                body.join(",")
            );
        }
        Format::Text => {
            for d in &diags {
                eprintln!("{d}");
            }
            if diags.is_empty() {
                eprintln!(
                    "kpn-lint: {} partition(s), {} process(es): no findings",
                    specs.len(),
                    specs.iter().map(|(_, s)| s.processes.len()).sum::<usize>()
                );
            }
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn run_fix(files: &[String], check_only: bool, format: Format) -> ExitCode {
    let specs = match load(files) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let mut reports: Vec<String> = Vec::new();
    let mut pending = 0usize;
    for (path, mut spec) in specs {
        let fixes = kpn_lint::synthesize_spec_fixes(&spec);
        if fixes.is_empty() {
            // Nothing to apply: the file is never rewritten, so a clean
            // partition round-trips byte-identical through `fix`.
            if format == Format::Json {
                reports.push(format!(
                    "{{\"path\":\"{}\",\"fixes\":[],\"applied\":false}}",
                    json_escape(&path)
                ));
            }
            continue;
        }
        pending += fixes.len();
        let fixes_json: Vec<String> = fixes.iter().map(fix_json).collect();
        if check_only {
            if format == Format::Text {
                for f in &fixes {
                    eprintln!("kpn-lint: {path}: pending fix: {f}");
                }
            } else {
                reports.push(format!(
                    "{{\"path\":\"{}\",\"fixes\":[{}],\"applied\":false}}",
                    json_escape(&path),
                    fixes_json.join(",")
                ));
            }
            continue;
        }
        kpn_lint::apply_spec_fixes(&mut spec, &fixes);
        let bytes = match kpn_codec::to_bytes(&spec) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("kpn-lint: cannot re-encode {path}: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(&path, bytes) {
            eprintln!("kpn-lint: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        if format == Format::Text {
            for f in &fixes {
                eprintln!("kpn-lint: {path}: applied: {f}");
            }
        } else {
            reports.push(format!(
                "{{\"path\":\"{}\",\"fixes\":[{}],\"applied\":true}}",
                json_escape(&path),
                fixes_json.join(",")
            ));
        }
    }
    if format == Format::Json {
        println!("{{\"files\":[{}]}}", reports.join(","));
    } else if pending == 0 {
        eprintln!("kpn-lint: nothing to fix");
    }
    if check_only && pending > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") {
        return usage();
    }
    let mut rest: &[String] = &args;
    let mode_fix = match rest.first().map(String::as_str) {
        Some("fix") => {
            rest = &rest[1..];
            true
        }
        Some("check") => {
            rest = &rest[1..];
            false
        }
        _ => false,
    };
    let mut format = Format::Text;
    let mut check_only = false;
    let mut files: Vec<String> = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                _ => return usage(),
            },
            "--check" if mode_fix => check_only = true,
            s if s.starts_with('-') => return usage(),
            _ => files.push(a.clone()),
        }
    }
    if files.is_empty() {
        return usage();
    }
    if mode_fix {
        run_fix(&files, check_only, format)
    } else {
        run_check(&files, format)
    }
}
