//! Checks serialized graph partitions before deployment.
//!
//! ```text
//! kpn-lint <spec-file>...
//! ```
//!
//! Each argument is a `kpn-codec`-encoded [`kpn_net::GraphSpec`]
//! (the bytes a deployment pipeline would ship to a `kpn-server`). All
//! files are checked together as one deployment, so remote endpoint
//! tokens must pair up *across* files.
//!
//! Exit status: 0 clean, 1 findings reported, 2 usage or read error.

use std::process::ExitCode;

use kpn_net::GraphSpec;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        eprintln!("usage: kpn-lint <spec-file>...");
        eprintln!("checks kpn-codec encoded GraphSpec partitions as one deployment");
        return ExitCode::from(2);
    }
    let mut specs: Vec<(String, GraphSpec)> = Vec::new();
    for path in &args {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("kpn-lint: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match kpn_codec::from_bytes::<GraphSpec>(&bytes) {
            Ok(spec) => specs.push((path.clone(), spec)),
            Err(e) => {
                eprintln!("kpn-lint: {path} is not a valid graph spec: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let diags = kpn_lint::check_specs(&specs);
    for d in &diags {
        eprintln!("{d}");
    }
    if diags.is_empty() {
        eprintln!(
            "kpn-lint: {} partition(s), {} process(es): no findings",
            specs.len(),
            specs.iter().map(|(_, s)| s.processes.len()).sum::<usize>()
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
