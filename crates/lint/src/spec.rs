//! Pre-deployment checking of serialized graph partitions.
//!
//! A distributed deployment is a set of [`GraphSpec`] partitions, one per
//! node, wired together by remote endpoint tokens (§4.2: an output's
//! `Remote { addr, token }` connects to the input listening for the same
//! `token` on another node's acceptor). Nothing validates that wiring
//! until every node is up — a mistyped token then presents as a silent
//! stall, the distributed analogue of the dangling-endpoint defect L001.
//! [`check_specs`] finds these statically, before anything is shipped.

use std::collections::HashMap;

use kpn_core::{DiagCode, Diagnostic, Fix, DEFAULT_CAPACITY};
use kpn_net::{GraphSpec, InputSpec, OutputSpec};

fn diag(code: DiagCode, message: String, process: Option<String>) -> Diagnostic {
    Diagnostic {
        code,
        message,
        process,
        channel: None,
        fixes: Vec::new(),
    }
}

/// Fixes synthesizable for one serialized partition. A [`GraphSpec`]
/// carries no rate or element-type metadata, so spec-level synthesis is
/// limited to what structure alone proves: a zero-capacity channel can
/// never transfer a byte, and the fix raises it to the deployment default
/// capacity. (Rate-declared live topologies get the exact schedule-derived
/// bounds from the L006 pass instead.) Fix channel ids are indices into
/// `spec.channels`.
pub fn synthesize_spec_fixes(spec: &GraphSpec) -> Vec<Fix> {
    spec.channels
        .iter()
        .enumerate()
        .filter(|(_, ch)| ch.capacity == 0)
        .map(|(ci, ch)| Fix::SetCapacity {
            channel: ci as u64,
            current: ch.capacity,
            suggested: DEFAULT_CAPACITY,
        })
        .collect()
}

/// Applies [`Fix::SetCapacity`] edits to a partition in place (fix channel
/// ids are indices into `spec.channels`). Capacities only ever grow, so
/// applying the same fixes twice is a no-op — the property `kpn-lint fix
/// --check` relies on. Returns the number of channels that changed.
pub fn apply_spec_fixes(spec: &mut GraphSpec, fixes: &[Fix]) -> usize {
    let mut changed = 0;
    for fix in fixes {
        let Fix::SetCapacity {
            channel, suggested, ..
        } = fix;
        if let Some(ch) = spec.channels.get_mut(*channel as usize) {
            if ch.capacity < *suggested {
                ch.capacity = *suggested;
                changed += 1;
            }
        }
    }
    changed
}

/// Statically checks a set of named graph partitions as one deployment.
///
/// Per partition: local channel references must be in bounds, every local
/// channel must have exactly one producer and one consumer (§1's
/// single-producer/single-consumer law), channel capacities must be
/// non-zero, and every process must hold at least one endpoint (L004).
/// Across partitions: every `OutputSpec::Remote` token must have exactly
/// one listening `InputSpec::Remote`, and vice versa — an unmatched token
/// is a remote endpoint that will dangle forever (L001).
///
/// The partition `name` (typically the file name) prefixes each message so
/// findings can be traced to the spec that caused them.
pub fn check_specs(specs: &[(String, GraphSpec)]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // token -> (#remote writers, #remote readers), with one exemplar
    // location each for the report.
    let mut remote: HashMap<u64, (usize, usize, String)> = HashMap::new();

    for (name, spec) in specs {
        let nch = spec.channels.len();
        let mut producers = vec![0usize; nch];
        let mut consumers = vec![0usize; nch];

        for (ci, ch) in spec.channels.iter().enumerate() {
            if ch.capacity == 0 {
                out.push(Diagnostic {
                    code: DiagCode::L003,
                    message: format!(
                        "{name}: channel {ci} has zero capacity; it can never \
                         transfer data"
                    ),
                    process: None,
                    channel: Some(ci as u64),
                    fixes: vec![Fix::SetCapacity {
                        channel: ci as u64,
                        current: 0,
                        suggested: DEFAULT_CAPACITY,
                    }],
                });
            }
        }

        for (pi, p) in spec.processes.iter().enumerate() {
            let label = format!("{name}: process {pi} (`{}`)", p.type_name);
            if p.inputs.is_empty() && p.outputs.is_empty() {
                out.push(diag(
                    DiagCode::L004,
                    format!("{label} holds no endpoints; it can neither produce nor consume data"),
                    Some(p.type_name.clone()),
                ));
            }
            for input in &p.inputs {
                match input {
                    InputSpec::Local(i) => {
                        if *i >= nch {
                            out.push(diag(
                                DiagCode::L001,
                                format!("{label} reads local channel {i}, but the partition only has {nch} channels"),
                                Some(p.type_name.clone()),
                            ));
                        } else {
                            consumers[*i] += 1;
                        }
                    }
                    InputSpec::Remote { token } => {
                        let e = remote.entry(*token).or_insert((0, 0, label.clone()));
                        e.1 += 1;
                    }
                }
            }
            for output in &p.outputs {
                match output {
                    OutputSpec::Local(i) => {
                        if *i >= nch {
                            out.push(diag(
                                DiagCode::L001,
                                format!("{label} writes local channel {i}, but the partition only has {nch} channels"),
                                Some(p.type_name.clone()),
                            ));
                        } else {
                            producers[*i] += 1;
                        }
                    }
                    OutputSpec::Remote { token, .. } => {
                        let e = remote.entry(*token).or_insert((0, 0, label.clone()));
                        e.0 += 1;
                    }
                }
            }
        }

        for ci in 0..nch {
            if producers[ci] != 1 {
                out.push(diag(
                    DiagCode::L001,
                    format!(
                        "{name}: channel {ci} has {} producers; a channel needs exactly one \
                         (its reader {} forever)",
                        producers[ci],
                        if producers[ci] == 0 { "blocks" } else { "races" },
                    ),
                    None,
                ));
            }
            if consumers[ci] != 1 {
                out.push(diag(
                    DiagCode::L001,
                    format!(
                        "{name}: channel {ci} has {} consumers; a channel needs exactly one \
                         (its writer {} once the buffer fills)",
                        consumers[ci],
                        if consumers[ci] == 0 { "stalls" } else { "races" },
                    ),
                    None,
                ));
            }
        }
    }

    let mut tokens: Vec<_> = remote.into_iter().collect();
    tokens.sort_by_key(|(t, _)| *t);
    for (token, (writers, readers, at)) in tokens {
        if writers != 1 || readers != 1 {
            out.push(diag(
                DiagCode::L001,
                format!(
                    "remote endpoint token {token} has {writers} writer(s) and {readers} \
                     reader(s) across the deployment (first seen at {at}); each token \
                     must pair exactly one remote output with one remote input"
                ),
                None,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpn_net::{ChannelSpec, ProcessSpec};

    fn process(inputs: Vec<InputSpec>, outputs: Vec<OutputSpec>) -> ProcessSpec {
        ProcessSpec {
            type_name: "P".into(),
            params: Vec::new(),
            inputs,
            outputs,
        }
    }

    fn named(spec: GraphSpec) -> Vec<(String, GraphSpec)> {
        vec![("part0".into(), spec)]
    }

    #[test]
    fn wired_partition_is_clean() {
        let spec = GraphSpec {
            channels: vec![ChannelSpec { capacity: 64 }],
            processes: vec![
                process(vec![], vec![OutputSpec::Local(0)]),
                process(vec![InputSpec::Local(0)], vec![]),
            ],
        };
        assert!(check_specs(&named(spec)).is_empty());
    }

    #[test]
    fn unconnected_local_channel_flagged() {
        let spec = GraphSpec {
            channels: vec![ChannelSpec { capacity: 64 }],
            processes: vec![process(vec![], vec![OutputSpec::Local(0)])],
        };
        let diags = check_specs(&named(spec));
        assert!(
            diags
                .iter()
                .any(|d| d.code == DiagCode::L001 && d.message.contains("0 consumers")),
            "{diags:?}"
        );
    }

    #[test]
    fn out_of_bounds_reference_flagged() {
        let spec = GraphSpec {
            channels: vec![],
            processes: vec![process(vec![InputSpec::Local(3)], vec![])],
        };
        let diags = check_specs(&named(spec));
        assert!(diags.iter().any(|d| d.message.contains("only has 0")));
    }

    #[test]
    fn zero_capacity_flagged() {
        let spec = GraphSpec {
            channels: vec![ChannelSpec { capacity: 0 }],
            processes: vec![
                process(vec![], vec![OutputSpec::Local(0)]),
                process(vec![InputSpec::Local(0)], vec![]),
            ],
        };
        let diags = check_specs(&named(spec));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::L003);
    }

    #[test]
    fn matched_remote_tokens_across_partitions_are_clean() {
        let a = GraphSpec {
            channels: vec![],
            processes: vec![process(
                vec![],
                vec![OutputSpec::Remote {
                    addr: "10.0.0.2:9000".into(),
                    token: 7,
                }],
            )],
        };
        let b = GraphSpec {
            channels: vec![],
            processes: vec![process(vec![InputSpec::Remote { token: 7 }], vec![])],
        };
        let specs = vec![("a".to_string(), a), ("b".to_string(), b)];
        assert!(check_specs(&specs).is_empty());
    }

    #[test]
    fn dangling_remote_token_flagged() {
        let a = GraphSpec {
            channels: vec![],
            processes: vec![process(
                vec![],
                vec![OutputSpec::Remote {
                    addr: "10.0.0.2:9000".into(),
                    token: 9,
                }],
            )],
        };
        let diags = check_specs(&[("a".to_string(), a)]);
        assert!(
            diags
                .iter()
                .any(|d| d.code == DiagCode::L001 && d.message.contains("token 9")),
            "{diags:?}"
        );
    }

    #[test]
    fn orphan_spec_process_flagged() {
        let spec = GraphSpec {
            channels: vec![],
            processes: vec![process(vec![], vec![])],
        };
        let diags = check_specs(&named(spec));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::L004);
    }
}
