//! End-to-end tests for the `kpn-lint` binary's `fix` mode: applying
//! synthesized capacity fixes rewrites a defective partition in place,
//! running `fix` again is a no-op, `fix --check` passes immediately after
//! `fix`, and a clean partition round-trips byte-identically (it is never
//! rewritten at all).

use kpn_net::{ChannelSpec, GraphSpec, InputSpec, OutputSpec, ProcessSpec};
use std::path::PathBuf;
use std::process::Command;

fn pipeline_spec(capacity: usize) -> GraphSpec {
    GraphSpec {
        channels: vec![ChannelSpec { capacity }],
        processes: vec![
            ProcessSpec {
                type_name: "Sequence".into(),
                params: Vec::new(),
                inputs: vec![],
                outputs: vec![OutputSpec::Local(0)],
            },
            ProcessSpec {
                type_name: "Print".into(),
                params: Vec::new(),
                inputs: vec![InputSpec::Local(0)],
                outputs: vec![],
            },
        ],
    }
}

fn write_spec(name: &str, spec: &GraphSpec) -> PathBuf {
    let path = std::env::temp_dir().join(format!("kpn-lint-cli-{}-{name}.spec", std::process::id()));
    std::fs::write(&path, kpn_codec::to_bytes(spec).unwrap()).unwrap();
    path
}

fn kpn_lint(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_kpn-lint"))
        .args(args)
        .output()
        .expect("kpn-lint binary runs")
}

#[test]
fn fix_rewrites_then_is_idempotent() {
    let path = write_spec("zero", &pipeline_spec(0));
    let path_s = path.to_str().unwrap();

    // `fix --check` on the defective spec: pending fix, exit 1, no write.
    let before = std::fs::read(&path).unwrap();
    let out = kpn_lint(&["fix", "--check", path_s]);
    assert_eq!(out.status.code(), Some(1), "pending fix must fail --check");
    assert_eq!(std::fs::read(&path).unwrap(), before, "--check must not write");

    // `fix` applies the SetCapacity fix in place.
    let out = kpn_lint(&["fix", path_s]);
    assert_eq!(out.status.code(), Some(0));
    let fixed = kpn_codec::from_bytes::<GraphSpec>(&std::fs::read(&path).unwrap()).unwrap();
    assert!(fixed.channels[0].capacity > 0, "capacity was synthesized");

    // Immediately after `fix`, `fix --check` passes and a second `fix`
    // leaves the bytes untouched.
    let fixed_bytes = std::fs::read(&path).unwrap();
    let out = kpn_lint(&["fix", "--check", path_s]);
    assert_eq!(out.status.code(), Some(0), "fix must be idempotent");
    let out = kpn_lint(&["fix", path_s]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(std::fs::read(&path).unwrap(), fixed_bytes);

    std::fs::remove_file(&path).ok();
}

#[test]
fn clean_spec_round_trips_byte_identical() {
    let path = write_spec("clean", &pipeline_spec(64));
    let before = std::fs::read(&path).unwrap();
    let out = kpn_lint(&["fix", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(
        std::fs::read(&path).unwrap(),
        before,
        "a spec with nothing to fix must never be rewritten"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn json_report_carries_diagnostics_and_fixes() {
    let path = write_spec("json", &pipeline_spec(0));
    let out = kpn_lint(&["check", "--format", "json", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "findings exit 1");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"code\":\"L003\""), "{stdout}");
    assert!(stdout.contains("\"kind\":\"set_capacity\""), "{stdout}");

    let out = kpn_lint(&["fix", "--check", "--format", "json", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"applied\":false"), "{stdout}");
    std::fs::remove_file(&path).ok();
}
