//! Whole-network benchmarks: the paper's example graphs end to end, plus
//! the reconfiguration ablation (self-removing Cons vs per-byte copying —
//! the efficiency argument of §3.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kpn_core::graphs::{fibonacci, first_primes, hamming, GraphOptions};
use kpn_core::Network;

fn example_networks(c: &mut Criterion) {
    let mut group = c.benchmark_group("example_networks");
    group.sample_size(10);
    group.bench_function("fibonacci_60", |b| {
        b.iter(|| {
            let net = Network::new();
            let out = fibonacci(&net, 60, &GraphOptions::default());
            net.run().unwrap();
            assert_eq!(out.lock().unwrap().len(), 60);
        });
    });
    group.bench_function("sieve_first_100_primes", |b| {
        b.iter(|| {
            let net = Network::new();
            let out = first_primes(&net, 100, &GraphOptions::default());
            net.run().unwrap();
            assert_eq!(out.lock().unwrap().len(), 100);
        });
    });
    group.bench_function("hamming_200", |b| {
        b.iter(|| {
            let net = Network::new();
            let out = hamming(&net, 200, &GraphOptions::default());
            net.run().unwrap();
            assert_eq!(out.lock().unwrap().len(), 200);
        });
    });
    group.finish();
}

fn cons_removal_ablation(c: &mut Criterion) {
    // §3.3: "to avoid unnecessary copying of data and improve efficiency,
    // the Cons processes remove themselves from the program graph." This
    // measures exactly that saving on the Fibonacci network.
    let mut group = c.benchmark_group("cons_removal");
    group.sample_size(10);
    const COUNT: u64 = 70;
    for self_removing in [false, true] {
        let label = if self_removing { "retire" } else { "copy" };
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &self_removing,
            |b, &self_removing| {
                let opts = GraphOptions {
                    self_removing_cons: self_removing,
                    ..Default::default()
                };
                b.iter(|| {
                    let net = Network::new();
                    let out = fibonacci(&net, COUNT, &opts);
                    net.run().unwrap();
                    assert_eq!(out.lock().unwrap().len(), COUNT as usize);
                });
            },
        );
    }
    group.finish();
}

fn monitor_overhead(c: &mut Criterion) {
    // Ablation: deadlock monitor enabled (Grow) vs disabled (Ignore) on a
    // pipeline that never deadlocks.
    use kpn_core::stdlib::{Collect, Scale, Sequence};
    use kpn_core::{DeadlockPolicy, NetworkConfig};
    use std::sync::{Arc, Mutex};
    let mut group = c.benchmark_group("monitor_overhead");
    group.sample_size(10);
    const COUNT: u64 = 20_000;
    group.throughput(Throughput::Elements(COUNT));
    for policy in [DeadlockPolicy::default(), DeadlockPolicy::Ignore] {
        let label = match policy {
            DeadlockPolicy::Ignore => "ignore",
            _ => "grow",
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, &policy| {
            b.iter(|| {
                let net = Network::with_config(NetworkConfig {
                    deadlock_policy: policy,
                    ..Default::default()
                });
                let (aw, ar) = net.channel();
                let (bw, br) = net.channel();
                let out = Arc::new(Mutex::new(Vec::new()));
                net.add(Sequence::new(0, COUNT, aw));
                net.add(Scale::new(3, ar, bw));
                net.add(Collect::new(br, out.clone()));
                net.run().unwrap();
                assert_eq!(out.lock().unwrap().len(), COUNT as usize);
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    example_networks,
    cons_removal_ablation,
    monitor_overhead
);
criterion_main!(benches);
