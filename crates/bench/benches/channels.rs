//! Channel microbenchmarks: throughput, ping-pong latency, and the
//! capacity ablation called out in DESIGN.md §5 (bounded channels trade
//! context switches against memory).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kpn_core::{channel_with_capacity, DataReader, DataWriter};
use std::thread;

fn throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel_throughput");
    group.sample_size(20);
    const TOTAL: usize = 1 << 20; // 1 MiB per iteration
    for capacity in [1 << 10, 1 << 13, 1 << 16] {
        group.throughput(Throughput::Bytes(TOTAL as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("capacity_{capacity}")),
            &capacity,
            |b, &capacity| {
                b.iter(|| {
                    let (mut w, mut r) = channel_with_capacity(capacity);
                    let writer = thread::spawn(move || {
                        let chunk = [0xABu8; 4096];
                        let mut sent = 0;
                        while sent < TOTAL {
                            w.write_all(&chunk).unwrap();
                            sent += chunk.len();
                        }
                    });
                    let mut buf = [0u8; 4096];
                    let mut got = 0;
                    while got < TOTAL {
                        got += r.read(&mut buf).unwrap();
                    }
                    writer.join().unwrap();
                });
            },
        );
    }
    group.finish();
}

fn latency(c: &mut Criterion) {
    // Round-trip of one i64 between two threads over two channels.
    let mut group = c.benchmark_group("channel_latency");
    group.sample_size(20);
    group.bench_function("pingpong_i64", |b| {
        b.iter_custom(|iters| {
            let (pw, pr) = channel_with_capacity(64);
            let (qw, qr) = channel_with_capacity(64);
            let mut ping_w = DataWriter::new(pw);
            let mut pong_r = DataReader::new(qr);
            let echo = thread::spawn(move || {
                let mut r = DataReader::new(pr);
                let mut w = DataWriter::new(qw);
                while let Ok(v) = r.read_i64() {
                    if w.write_i64(v).is_err() {
                        break;
                    }
                }
            });
            let start = std::time::Instant::now();
            for i in 0..iters {
                ping_w.write_i64(i as i64).unwrap();
                assert_eq!(pong_r.read_i64().unwrap(), i as i64);
            }
            let elapsed = start.elapsed();
            drop(ping_w);
            drop(pong_r);
            echo.join().unwrap();
            elapsed
        });
    });
    group.finish();
}

fn typed_vs_raw(c: &mut Criterion) {
    // Ablation: typed i64 stream vs raw 8-byte writes (cost of the
    // DataWriter layer over the byte channel).
    let mut group = c.benchmark_group("typed_vs_bytes");
    group.sample_size(20);
    const COUNT: usize = 50_000;
    group.throughput(Throughput::Elements(COUNT as u64));
    group.bench_function("typed_i64", |b| {
        b.iter(|| {
            let (w, r) = channel_with_capacity(8192);
            let writer = thread::spawn(move || {
                let mut dw = DataWriter::new(w);
                for i in 0..COUNT {
                    dw.write_i64(i as i64).unwrap();
                }
            });
            let mut dr = DataReader::new(r);
            for _ in 0..COUNT {
                dr.read_i64().unwrap();
            }
            writer.join().unwrap();
        });
    });
    group.bench_function("raw_8byte", |b| {
        b.iter(|| {
            let (mut w, mut r) = channel_with_capacity(8192);
            let writer = thread::spawn(move || {
                let buf = [7u8; 8];
                for _ in 0..COUNT {
                    w.write_all(&buf).unwrap();
                }
            });
            let mut buf = [0u8; 8];
            for _ in 0..COUNT {
                r.read_exact(&mut buf).unwrap();
            }
            writer.join().unwrap();
        });
    });
    group.finish();
}

fn buffered_vs_unbuffered(c: &mut Criterion) {
    // The batching fast path: buffered typed streams (default since the
    // buffered-streams change) vs the old one-syscall-per-token behaviour.
    // Results are summarized in BENCH_channels.json at the repo root.
    let mut group = c.benchmark_group("typed_buffering");
    group.sample_size(20);
    const COUNT: usize = 200_000;
    group.throughput(Throughput::Elements(COUNT as u64));
    group.bench_function("write_read_i64_buffered", |b| {
        b.iter(|| {
            let (w, r) = channel_with_capacity(8192);
            let writer = thread::spawn(move || {
                let mut dw = DataWriter::new(w);
                for i in 0..COUNT {
                    dw.write_i64(i as i64).unwrap();
                }
            });
            let mut dr = DataReader::new(r);
            for _ in 0..COUNT {
                dr.read_i64().unwrap();
            }
            writer.join().unwrap();
        });
    });
    group.bench_function("write_read_i64_unbuffered", |b| {
        b.iter(|| {
            let (w, r) = channel_with_capacity(8192);
            let writer = thread::spawn(move || {
                let mut dw = DataWriter::unbuffered(w);
                for i in 0..COUNT {
                    dw.write_i64(i as i64).unwrap();
                }
            });
            let mut dr = DataReader::unbuffered(r);
            for _ in 0..COUNT {
                dr.read_i64().unwrap();
            }
            writer.join().unwrap();
        });
    });
    group.finish();
}

criterion_group!(benches, throughput, latency, typed_vs_raw, buffered_vs_unbuffered);
criterion_main!(benches);
