//! Codec microbenchmarks: the serialization overhead the paper attributes
//! to "Object Serialization and network communication" (§5.2 reports
//! 6-7% total overhead at one worker).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kpn_parallel::{SyntheticTask, TaskEnvelope};
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct Mixed {
    id: u64,
    label: String,
    values: Vec<f64>,
    flags: Vec<bool>,
    nested: Option<Box<Mixed>>,
}

fn mixed() -> Mixed {
    Mixed {
        id: 42,
        label: "a moderately sized label string".into(),
        values: (0..64).map(|i| i as f64 * 0.5).collect(),
        flags: (0..32).map(|i| i % 3 == 0).collect(),
        nested: Some(Box::new(Mixed {
            id: 43,
            label: "inner".into(),
            values: vec![1.0, 2.0],
            flags: vec![],
            nested: None,
        })),
    }
}

fn encode_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    group.sample_size(50);
    let value = mixed();
    let bytes = kpn_codec::to_bytes(&value).unwrap();
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_mixed", |b| {
        b.iter(|| kpn_codec::to_bytes(&value).unwrap());
    });
    group.bench_function("decode_mixed", |b| {
        b.iter(|| kpn_codec::from_bytes::<Mixed>(&bytes).unwrap());
    });

    let envelope = TaskEnvelope::pack(
        "kpn.SyntheticTask",
        &SyntheticTask {
            seq: 7,
            cost_units: 1.5,
        },
    )
    .unwrap();
    let env_bytes = kpn_codec::to_bytes(&envelope).unwrap();
    group.bench_function("encode_task_envelope", |b| {
        b.iter(|| kpn_codec::to_bytes(&envelope).unwrap());
    });
    group.bench_function("decode_task_envelope", |b| {
        b.iter(|| kpn_codec::from_bytes::<TaskEnvelope>(&env_bytes).unwrap());
    });
    group.finish();
}

fn object_stream_over_channel(c: &mut Criterion) {
    use kpn_codec::{ObjectReader, ObjectWriter};
    use kpn_core::channel_with_capacity;
    let mut group = c.benchmark_group("object_stream");
    group.sample_size(20);
    const COUNT: usize = 10_000;
    group.throughput(Throughput::Elements(COUNT as u64));
    group.bench_function("envelopes_through_channel", |b| {
        b.iter(|| {
            let (w, r) = channel_with_capacity(64 * 1024);
            let writer = std::thread::spawn(move || {
                let mut ow = ObjectWriter::new(w);
                for seq in 0..COUNT as u64 {
                    ow.write(
                        &TaskEnvelope::pack(
                            "kpn.SyntheticTask",
                            &SyntheticTask {
                                seq,
                                cost_units: 0.0,
                            },
                        )
                        .unwrap(),
                    )
                    .unwrap();
                }
            });
            let mut or = ObjectReader::new(r);
            for _ in 0..COUNT {
                let _: TaskEnvelope = or.read().unwrap();
            }
            writer.join().unwrap();
        });
    });
    group.finish();
}

criterion_group!(benches, encode_decode, object_stream_over_channel);
criterion_main!(benches);
