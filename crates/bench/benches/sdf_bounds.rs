//! Ablation: static SDF buffer bounds vs Parks' runtime buffer growth.
//!
//! The same multirate graph, executed three ways:
//! * `static_bounds` — channels sized by the schedule's exact bounds
//!   (provably zero monitor interventions);
//! * `oversized` — channels at the 8 KiB default (no pressure at all);
//! * `starved_grown` — channels deliberately too small, healed at run time
//!   by the deadlock monitor's growth procedure (§3.5).

use criterion::{criterion_group, criterion_main, Criterion};
use kpn_core::stdlib::{Collect, Scale, Sequence};
use kpn_core::{DeadlockPolicy, Network, NetworkConfig};
use kpn_sdf::{execute, Schedule, SdfActor, SdfGraph};
use std::sync::{Arc, Mutex};

fn run_sdf(periods: u64) -> u64 {
    let mut g = SdfGraph::new();
    let src = g.actor("src");
    let up = g.actor("up");
    let down = g.actor("down");
    let sink = g.actor("sink");
    g.edge(src, up, 2, 3);
    g.edge(up, down, 7, 5);
    g.edge(down, sink, 1, 1);
    let s = Schedule::build(&g).unwrap();
    let mut t = 0i64;
    let report = execute(
        &g,
        &s,
        vec![
            SdfActor::new(src, move |_i, o| {
                o[0].push(t);
                o[0].push(t + 1);
                t += 2;
                Ok(())
            }),
            SdfActor::new(up, |i, o| {
                for k in 0..7usize {
                    o[0].push(i[0][k * 3 / 7]);
                }
                Ok(())
            }),
            SdfActor::new(down, |i, o| {
                o[0].push(i[0].iter().sum::<i64>() / 5);
                Ok(())
            }),
            SdfActor::new(sink, |_i, _o| Ok(())),
        ],
        periods,
    )
    .unwrap();
    report.monitor.growths
}

/// The equivalent pipeline built directly on KPN channels with the given
/// capacity, relying on the monitor when starved.
fn run_kpn_pipeline(capacity: usize, count: u64) -> u64 {
    let net = Network::with_config(NetworkConfig {
        deadlock_policy: DeadlockPolicy::default(),
        ..Default::default()
    });
    let (aw, ar) = net.channel_with_capacity(capacity);
    let (bw, br) = net.channel_with_capacity(capacity);
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Sequence::new(0, count, aw));
    net.add(Scale::new(3, ar, bw));
    net.add(Collect::new(br, out.clone()));
    let report = net.run().unwrap();
    assert_eq!(out.lock().unwrap().len(), count as usize);
    report.monitor.growths
}

fn sdf_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("sdf_bounds");
    group.sample_size(10);
    group.bench_function("static_bounds_20_periods", |b| {
        b.iter(|| {
            let growths = run_sdf(20);
            assert_eq!(growths, 0, "static bounds must suffice");
        });
    });
    group.bench_function("kpn_default_capacity", |b| {
        b.iter(|| run_kpn_pipeline(8192, 1060));
    });
    group.bench_function("kpn_starved_grown", |b| {
        b.iter(|| run_kpn_pipeline(8, 1060));
    });
    group.finish();
}

criterion_group!(benches, sdf_bounds);
criterion_main!(benches);
