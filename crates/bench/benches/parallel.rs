//! Parallel-framework benchmarks: schema overhead (static vs dynamic with
//! zero-cost tasks — pure routing cost), the batch-size ablation, and
//! local vs remote channel transport.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kpn_core::Network;
use kpn_parallel::{
    meta_dynamic, meta_static, register_stock_tasks, synthetic_task_stream, Consumer, Producer,
    TaskEnvelope, TaskTypeRegistry,
};
use std::sync::Arc;

fn registry() -> Arc<TaskTypeRegistry> {
    let mut reg = TaskTypeRegistry::new();
    register_stock_tasks(&mut reg);
    reg.into_shared()
}

fn run_schema(dynamic: bool, workers: usize, tasks: u64) {
    let net = Network::new();
    let (tw, tr) = net.channel();
    let (rw, rr) = net.channel();
    net.add(Producer::new(synthetic_task_stream(tasks, 0.0), tw));
    let speeds = vec![1.0; workers];
    if dynamic {
        meta_dynamic(&net, registry(), &speeds, tr, rw);
    } else {
        meta_static(&net, registry(), &speeds, tr, rw);
    }
    let counted = std::sync::atomic::AtomicU64::new(0);
    let counted = Arc::new(counted);
    let c2 = counted.clone();
    net.add(Consumer::new(rr, move |_e: TaskEnvelope| {
        c2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(true)
    }));
    net.run().unwrap();
    assert_eq!(counted.load(std::sync::atomic::Ordering::Relaxed), tasks);
}

fn schema_overhead(c: &mut Criterion) {
    // Zero-cost tasks: measures pure scheduling/routing overhead of each
    // schema (the paper's §5.2 attributes its ideal-vs-dynamic gap to this
    // kind of overhead plus startup).
    let mut group = c.benchmark_group("schema_overhead");
    group.sample_size(10);
    const TASKS: u64 = 256;
    group.throughput(Throughput::Elements(TASKS));
    for workers in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("static", workers), &workers, |b, &w| {
            b.iter(|| run_schema(false, w, TASKS))
        });
        group.bench_with_input(BenchmarkId::new("dynamic", workers), &workers, |b, &w| {
            b.iter(|| run_schema(true, w, TASKS))
        });
    }
    group.finish();
}

fn batch_size_ablation(c: &mut Criterion) {
    // The paper chose 32 differences per task to balance computation and
    // communication; this varies the number of tasks for a fixed total
    // workload (more tasks = finer batches = more routing overhead).
    let mut group = c.benchmark_group("batch_size");
    group.sample_size(10);
    for tasks in [64u64, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, &tasks| {
            b.iter(|| run_schema(true, 4, tasks))
        });
    }
    group.finish();
}

fn local_vs_remote(c: &mut Criterion) {
    // The same byte stream through an in-memory channel vs a TCP loopback
    // channel (the §4.2 transport swap).
    use kpn_net::Node;
    let mut group = c.benchmark_group("local_vs_remote");
    group.sample_size(10);
    const TOTAL: usize = 1 << 18; // 256 KiB
    group.throughput(Throughput::Bytes(TOTAL as u64));
    group.bench_function("local_channel", |b| {
        b.iter(|| {
            let (mut w, mut r) = kpn_core::channel_with_capacity(8192);
            let writer = std::thread::spawn(move || {
                let chunk = [1u8; 4096];
                let mut sent = 0;
                while sent < TOTAL {
                    w.write_all(&chunk).unwrap();
                    sent += chunk.len();
                }
            });
            let mut buf = [0u8; 4096];
            let mut got = 0;
            while got < TOTAL {
                got += r.read(&mut buf).unwrap();
            }
            writer.join().unwrap();
        });
    });
    let node = Node::serve("127.0.0.1:0").unwrap();
    group.bench_function("remote_channel_loopback", |b| {
        b.iter(|| {
            let token: u64 = rand::random();
            let mut r = node.remote_reader(token);
            let mut w = node.remote_writer(&node.addr().to_string(), token).unwrap();
            let writer = std::thread::spawn(move || {
                let chunk = [1u8; 4096];
                let mut sent = 0;
                while sent < TOTAL {
                    w.write_all(&chunk).unwrap();
                    sent += chunk.len();
                }
            });
            let mut buf = [0u8; 4096];
            let mut got = 0;
            while got < TOTAL {
                got += r.read(&mut buf).unwrap();
            }
            writer.join().unwrap();
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    schema_overhead,
    batch_size_ablation,
    local_vs_remote
);
criterion_main!(benches);
