//! Bignum microbenchmarks: the arithmetic kernels behind each factoring
//! task, plus the Karatsuba-threshold ablation (DESIGN.md §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kpn_bignum::{make_weak_key, search_range, test_difference, BigUint};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng() -> StdRng {
    StdRng::seed_from_u64(0xBE7C4)
}

fn value_of_bits(bits: u64, rng: &mut StdRng) -> BigUint {
    let v = BigUint::random_bits(bits, rng);
    // ensure full width
    v.add(&BigUint::one().shl(bits - 1))
}

fn mul(c: &mut Criterion) {
    let mut group = c.benchmark_group("bignum_mul");
    let mut r = rng();
    // 512 and 1024 bits sit below the Karatsuba threshold (24 limbs);
    // 4096 bits is above it.
    for bits in [512u64, 1024, 4096] {
        let a = value_of_bits(bits, &mut r);
        let b = value_of_bits(bits, &mut r);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bench, _| {
            bench.iter(|| a.mul(&b));
        });
    }
    group.finish();
}

fn divrem(c: &mut Criterion) {
    let mut group = c.benchmark_group("bignum_divrem");
    let mut r = rng();
    let n = value_of_bits(2048, &mut r);
    let d = value_of_bits(1024, &mut r);
    group.bench_function("2048_by_1024", |bench| {
        bench.iter(|| n.divrem(&d));
    });
    group.finish();
}

fn isqrt(c: &mut Criterion) {
    let mut group = c.benchmark_group("bignum_isqrt");
    let mut r = rng();
    for bits in [512u64, 1024, 2048] {
        let n = value_of_bits(bits, &mut r);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bench, _| {
            bench.iter(|| n.isqrt());
        });
    }
    group.finish();
}

fn modpow_kernels(c: &mut Criterion) {
    // Montgomery CIOS vs the division-path oracle at the experiment's
    // modulus sizes: 512-bit (the paper's P), 1024-bit (N), 2048-bit.
    // `modpow` dispatches to Montgomery for these odd moduli; `modpow_div`
    // forces the Knuth-D reduction per step.
    let mut group = c.benchmark_group("bignum_modpow");
    group.sample_size(10);
    let mut r = rng();
    for bits in [512u64, 1024, 2048] {
        let mut n = value_of_bits(bits, &mut r);
        if n.is_even() {
            n = n.add_u64(1);
        }
        let base = value_of_bits(bits, &mut r);
        let exp = value_of_bits(bits, &mut r);
        group.bench_with_input(
            BenchmarkId::new("montgomery", bits),
            &bits,
            |bench, _| bench.iter(|| base.modpow(&exp, &n)),
        );
        group.bench_with_input(BenchmarkId::new("division", bits), &bits, |bench, _| {
            bench.iter(|| base.modpow_div(&exp, &n))
        });
    }
    group.finish();
}

fn factor_kernel(c: &mut Criterion) {
    // One difference test and one full 32-difference task at the scaled
    // experiment size (256-bit P → 512-bit N).
    let mut group = c.benchmark_group("factor_kernel");
    group.sample_size(20);
    let key = make_weak_key(256, 1 << 16, &mut rng());
    group.bench_function("test_difference_miss", |b| {
        b.iter(|| test_difference(&key.n, 12345 * 2));
    });
    group.bench_function("task_32_differences", |b| {
        b.iter(|| search_range(&key.n, 0, 64));
    });
    group.finish();
}

criterion_group!(benches, mul, divrem, isqrt, modpow_kernels, factor_kernel);
criterion_main!(benches);
