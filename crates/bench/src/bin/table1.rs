//! Regenerates **Table 1** (sequential execution): the full factoring
//! workload run on a single CPU of each class, times in paper minutes and
//! speeds normalized to class C.
//!
//! ```text
//! cargo run -p kpn-bench --release --bin table1 [-- --tasks N --scale MS]
//! ```

use kpn_bench::{f2, measure_sequential, HarnessConfig};
use kpn_cluster::CpuClass;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = HarnessConfig::from_args(&args);
    println!(
        "Table 1: Sequential Execution ({} tasks, {} ms per paper-minute)",
        cfg.tasks, cfg.scale.millis_per_minute
    );
    println!("  workload: {:.2} class-C paper-minutes total", 22.50);
    println!();
    println!("        |  paper (min, speed)  | measured (min, speed) | CPU class");
    println!("  ------+----------------------+-----------------------+---------------------------");
    for class in CpuClass::ALL {
        let m = measure_sequential(&cfg, class);
        println!(
            "      {:?} |    {}  {}      |     {}  {}       | {}",
            class,
            f2(class.sequential_minutes(), 6),
            f2(class.speed(), 5),
            f2(m.minutes, 6),
            f2(m.speed, 5),
            class.description()
        );
        assert_eq!(m.results, cfg.tasks, "lost results for class {class:?}");
    }
    println!();
    println!(
        "  note: measured minutes are simulated wall time mapped back through the\n  \
         time scale; speeds are {:.2} / measured, matching Table 1's normalization.",
        22.50
    );
}
