//! Cluster-scale §5.2 factor benchmark with chaos-fault cells.
//!
//! Runs the paper's weak-RSA search — `task_count` tasks of 32 even
//! differences against `N = P·(P+D)` — through the MetaDynamic composite
//! deployed over real `kpn-net` clusters (loopback TCP nodes), sweeping
//!
//! * fault injection: plain TCP vs seeded `FaultyTransport` chaos on
//!   every data link (resets, stalls, refused connects);
//! * worker count: 1, 2, 4 Workers;
//! * cluster width: all workers on 1 compute node vs spread over 2.
//!
//! Every cell must recover the *identical* planted factor, and every
//! cell's full task-result history must be bit-identical to the
//! fault-free single-worker baseline — a fast divergent run is a failure,
//! not a data point. A kernel micro-section times `modpow` (Montgomery
//! CIOS) against `modpow_div` (Knuth-D reduction) at 512/1024/2048-bit
//! moduli, the same dispatch the factor tasks ride on.
//!
//! ```text
//! cargo run -p kpn-bench --release --bin factor [-- --bits 512 --tasks 2048 \
//!     --quick --out bench_results/BENCH_factor.json]
//! ```

use kpn_bignum::{make_weak_key, BigUint};
use kpn_net::chaos::{chaos_policy, ChaosCluster};
use kpn_net::FaultProfile;
use kpn_parallel::{factor_cluster_run, parallel_registry, FactorRunReport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

const BATCH: u64 = 32;
const WORKER_SWEEP: [usize; 3] = [1, 2, 4];
const NODE_SWEEP: [usize; 2] = [1, 2];
const FAULT_SEED: u64 = 0xFAC7_0001;

struct Cell {
    faulted: bool,
    nodes: usize,
    workers: usize,
    tasks_per_sec: f64,
    secs_to_factor: f64,
    total_secs: f64,
    injected: u64,
}

fn fault_profile() -> FaultProfile {
    FaultProfile {
        mean_ops_between_faults: 400,
        refuse_connects: 1,
        max_faults: 64,
        ..FaultProfile::default()
    }
}

/// Round-robin worker→partition assignment over `nodes` compute servers.
fn partitions(workers: usize, nodes: usize) -> Vec<usize> {
    (0..workers).map(|w| w % nodes).collect()
}

fn run_cell(
    n: &BigUint,
    tasks: u64,
    faulted: bool,
    nodes: usize,
    workers: usize,
) -> (FactorRunReport, u64) {
    let cluster = if faulted {
        // Distinct seed per cell so schedules differ while staying pinned.
        let seed = FAULT_SEED ^ ((nodes as u64) << 8) ^ workers as u64;
        ChaosCluster::with_faults_with(
            nodes,
            seed,
            fault_profile(),
            chaos_policy(),
            &parallel_registry,
        )
    } else {
        ChaosCluster::plain_with(nodes, &parallel_registry)
    }
    .expect("cluster");
    let report = factor_cluster_run(&cluster, n, tasks, BATCH, &partitions(workers, nodes))
        .expect("factor run");
    (report, cluster.injected())
}

/// Median of a few modpow timings at `bits`-bit odd modulus, in seconds.
fn time_modpow(bits: u64, division: bool, reps: usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(0xBE7C4 ^ bits);
    let mut n = BigUint::random_bits(bits, &mut rng).add(&BigUint::one().shl(bits - 1));
    if n.is_even() {
        n = n.add_u64(1);
    }
    let base = BigUint::random_bits(bits, &mut rng);
    let exp = BigUint::random_bits(bits, &mut rng);
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            let out = if division {
                base.modpow_div(&exp, &n)
            } else {
                base.modpow(&exp, &n)
            };
            let secs = start.elapsed().as_secs_f64();
            assert!(out < n);
            secs
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut bits = 512u64;
    let mut tasks = 2048u64;
    let mut out_path = "bench_results/BENCH_factor.json".to_string();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--bits" => {
                bits = argv[i + 1].parse().expect("--bits N");
                i += 2;
            }
            "--tasks" => {
                tasks = argv[i + 1].parse().expect("--tasks N");
                i += 2;
            }
            "--quick" => {
                bits = 256;
                tasks = 128;
                i += 1;
            }
            "--out" => {
                out_path = argv[i + 1].clone();
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }

    // Factor planted in the final task: every cell does the full search.
    let planted_d = (tasks - 1) * 2 * BATCH + BATCH;
    let mut rng = StdRng::seed_from_u64(0x4EA1);
    let key = make_weak_key(bits, planted_d, &mut rng);
    eprintln!(
        "cluster factor benchmark: {bits}-bit P, {tasks} tasks x {BATCH} differences, \
         factor at d={planted_d}"
    );

    let mut baseline: Option<FactorRunReport> = None;
    let mut cells: Vec<Cell> = Vec::new();
    for faulted in [false, true] {
        for &nodes in &NODE_SWEEP {
            for &workers in &WORKER_SWEEP {
                let (report, injected) = run_cell(&key.n, tasks, faulted, nodes, workers);
                // The determinacy + correctness gates: identical factor,
                // identical history, in every cell.
                assert_eq!(
                    report.factor.as_ref(),
                    Some(&(key.p.clone(), planted_d)),
                    "cell faulted={faulted} nodes={nodes} workers={workers} \
                     recovered a different factor"
                );
                match &baseline {
                    None => baseline = Some(report.clone()),
                    Some(b) => assert_eq!(
                        report.outcomes, b.outcomes,
                        "cell faulted={faulted} nodes={nodes} workers={workers} \
                         broke determinacy"
                    ),
                }
                let cell = Cell {
                    faulted,
                    nodes,
                    workers,
                    tasks_per_sec: tasks as f64 / report.total_secs,
                    secs_to_factor: report.secs_to_factor.expect("factor found"),
                    total_secs: report.total_secs,
                    injected,
                };
                eprintln!(
                    "  {} nodes={nodes} workers={workers}: {:>8.1} tasks/s, \
                     factor at {:>6.2}s, {} faults",
                    if faulted { "chaos" } else { "plain" },
                    cell.tasks_per_sec,
                    cell.secs_to_factor,
                    cell.injected
                );
                if faulted {
                    assert!(injected > 0, "chaos cell injected no faults");
                }
                cells.push(cell);
            }
        }
    }

    // Kernel micro-section: the modpow dispatch the tasks' primality and
    // residue arithmetic rides on.
    let mut kernels = String::new();
    for (ki, kbits) in [512u64, 1024, 2048].into_iter().enumerate() {
        let div = time_modpow(kbits, true, 5);
        let mont = time_modpow(kbits, false, 5);
        eprintln!(
            "  modpow {kbits}-bit: division {:.1}ms, montgomery {:.1}ms ({:.2}x)",
            div * 1e3,
            mont * 1e3,
            div / mont
        );
        let sep = if ki == 2 { "" } else { "," };
        let _ = writeln!(
            kernels,
            "      {{\"bits\": {kbits}, \"division_ms\": {:.3}, \"montgomery_ms\": {:.3}, \"speedup\": {:.2}}}{sep}",
            div * 1e3,
            mont * 1e3,
            div / mont
        );
    }

    let mut rows = String::new();
    for (ci, c) in cells.iter().enumerate() {
        let sep = if ci + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            rows,
            "      {{\"faulted\": {}, \"nodes\": {}, \"workers\": {}, \"tasks_per_sec\": {:.2}, \"secs_to_factor\": {:.4}, \"total_secs\": {:.4}, \"injected_faults\": {}}}{sep}",
            c.faulted, c.nodes, c.workers, c.tasks_per_sec, c.secs_to_factor, c.total_secs, c.injected
        );
    }
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"benchmark\": \"factor_cluster (crates/bench/src/bin/factor.rs)\",\n  \"description\": \"The paper's 5.2 weak-RSA factorization ({bits}-bit P, N = P*(P+D), {tasks} tasks of {BATCH} even differences, factor planted in the final task) run through the MetaDynamic composite deployed over loopback kpn-net clusters: plain TCP vs seeded FaultyTransport chaos on every data link, 1/2/4 Workers, 1 vs 2 compute nodes. Every cell asserts the identical recovered factor AND a task-result history bit-identical to the fault-free single-worker baseline before its timing is accepted. Kernel section: modpow Montgomery-CIOS vs division-path oracle at the experiment's modulus sizes.\",\n  \"machine\": \"linux x86_64, release build, {hw} hardware threads\",\n  \"date\": \"2026-08-08\",\n  \"workload\": {{\"p_bits\": {bits}, \"tasks\": {tasks}, \"batch\": {BATCH}, \"planted_d\": {planted_d}, \"key_seed\": 20129, \"fault_seed\": {FAULT_SEED}}},\n  \"cells\": [\n{rows}    ],\n  \"modpow_kernels\": [\n{kernels}    ],\n  \"acceptance\": \"all {ncells} cells (fault-free and chaos-faulted) recover the identical planted factor with bit-identical task-result histories; Montgomery modpow beats the division oracle at every modulus size\",\n  \"notes\": \"Workers run real bignum arithmetic, so tasks/sec is CPU-bound and saturates at the hardware thread count; chaos cells pay reconnect backoff and stall time on top (wall-clock stalls, FaultProfile default 30ms). The Kahn determinacy argument is what makes the faulted numbers admissible: since the history is provably identical, the chaos columns measure the reconnection protocol's overhead, nothing else.\",\n  \"regenerate\": \"cargo run -p kpn-bench --release --bin factor [-- --quick]\"\n}}\n",
        ncells = cells.len(),
    );
    print!("{json}");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).expect("write results file");
    eprintln!("wrote {out_path}");
}
