//! Per-worker task distribution under each load-balancing schema
//! (§5.2's core mechanism): with static balancing every worker gets the
//! same task count regardless of speed; with dynamic balancing "faster
//! workers end up processing more tasks, slower workers process fewer."
//!
//! ```text
//! cargo run -p kpn-bench --release --bin distribution [-- --tasks N --scale MS]
//! ```

use kpn_bench::HarnessConfig;
use kpn_cluster::CpuClass;
use kpn_core::Network;
use kpn_parallel::{
    meta_dynamic_with, meta_static_with, register_stock_tasks, synthetic_task_stream, Consumer,
    Producer, TaskEnv, TaskEnvelope, TaskTypeRegistry,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const WORKERS: usize = 8;

fn run(cfg: &HarnessConfig, dynamic: bool) -> Vec<u64> {
    let cost_units = cfg.scale.task_cost_units(cfg.task_minutes());
    let mut reg = TaskTypeRegistry::new();
    register_stock_tasks(&mut reg);
    let reg = reg.into_shared();
    let net = Network::new();
    let (tw, tr) = net.channel();
    let (rw, rr) = net.channel();
    net.add(Producer::new(
        synthetic_task_stream(cfg.tasks, cost_units),
        tw,
    ));
    let speeds = cfg.inventory.speeds(WORKERS);
    let counters: Vec<Arc<AtomicU64>> = (0..WORKERS).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let build_worker = {
        let counters = counters.clone();
        let reg = reg.clone();
        move |i: usize, r: kpn_core::ChannelReader, w: kpn_core::ChannelWriter| {
            let counter = counters[i].clone();
            let reg = reg.clone();
            let speed = speeds[i];
            Box::new(kpn_core::FnProcess::new(format!("worker-{i}"), move |_| {
                let mut input = kpn_codec::ObjectReader::new(r);
                let mut out = kpn_codec::ObjectWriter::new(w);
                let env = TaskEnv { speed };
                loop {
                    let envelope: TaskEnvelope = match input.read() {
                        Ok(e) => e,
                        Err(kpn_core::Error::Eof) => return Ok(()),
                        Err(e) => return Err(e),
                    };
                    counter.fetch_add(1, Ordering::Relaxed);
                    let task = reg.decode(&envelope)?;
                    out.write(&task.run(&env)?)?;
                }
            })) as Box<dyn kpn_core::Process>
        }
    };
    if dynamic {
        meta_dynamic_with(&net, WORKERS, tr, rw, build_worker);
    } else {
        meta_static_with(&net, WORKERS, tr, rw, build_worker);
    }
    net.add(Consumer::new(rr, |_e: TaskEnvelope| Ok(true)));
    net.run().expect("distribution run");
    counters.iter().map(|c| c.load(Ordering::Relaxed)).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = HarnessConfig::from_args(&args);
    println!(
        "Task distribution across {WORKERS} heterogeneous workers ({} tasks):\n",
        cfg.tasks
    );
    let static_counts = run(&cfg, false);
    let dynamic_counts = run(&cfg, true);
    let classes: Vec<CpuClass> = cfg.inventory.allocate(WORKERS);
    println!("  worker | class speed |  static  | dynamic");
    println!("  -------+-------------+----------+--------");
    for w in 0..WORKERS {
        println!(
            "     {w:>3} |   {:?}  {:>4.2}  |  {:>6}  | {:>6}",
            classes[w],
            classes[w].speed(),
            static_counts[w],
            dynamic_counts[w]
        );
    }
    let spread = |v: &[u64]| v.iter().max().unwrap() - v.iter().min().unwrap();
    println!(
        "\n  static spread (max-min): {}   dynamic spread: {}",
        spread(&static_counts),
        spread(&dynamic_counts)
    );
    println!(
        "  expected: static counts are equal by construction; dynamic counts\n  \
         scale with worker speed (class A ≈ 1.9x the class-C count)."
    );
}
