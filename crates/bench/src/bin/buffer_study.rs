//! Buffer-management study (§3.5 / §6.2): runs the two graphs the paper
//! uses to motivate bounded scheduling — the Hamming network (Figure 12,
//! unbounded growth) and the mod/merge DAG (Figure 13, asymmetric rates) —
//! with deliberately starved channels, and reports what Parks' procedure
//! discovered: which channels had to grow, to what capacity, and the
//! final per-channel traffic/occupancy profile.
//!
//! ```text
//! cargo run -p kpn-bench --release --bin buffer_study [-- COUNT]
//! ```

use kpn_core::graphs::{hamming, mod_merge_dag, GraphOptions};
use kpn_core::Network;
use std::collections::BTreeMap;

fn report(label: &str, net: &Network, produced: usize) {
    println!("== {label}");
    println!("   output length: {produced}");
    let stats = net.monitor().stats();
    println!(
        "   artificial deadlocks resolved: {} growth events",
        stats.growths
    );
    if stats.growth_log.is_empty() {
        println!("   no channel ever needed to grow");
    } else {
        let mut finals: BTreeMap<u64, (usize, usize, u32)> = BTreeMap::new();
        for (chan, old, new) in &stats.growth_log {
            let e = finals.entry(*chan).or_insert((*old, *new, 0));
            e.1 = (*new).max(e.1);
            e.2 += 1;
        }
        println!("   channel | initial -> settled capacity (growths)");
        for (chan, (initial, settled, growths)) in &finals {
            println!("   {chan:>7} | {initial:>7} -> {settled:>7}  ({growths})");
        }
    }
    println!("   per-channel I/O — bytes, write-blocks, read-blocks, peak/capacity:");
    for (id, st) in net.channel_report() {
        println!(
            "   {id:>7} | {:>9}  wb {:>6}  rb {:>6}  peak {:>6}/{}",
            st.bytes_written, st.write_blocks, st.read_blocks, st.peak_occupancy, st.capacity
        );
    }
    println!();
}

fn main() {
    let count: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("numeric count"))
        .unwrap_or(500);

    println!("Buffer-management study: starved channels healed by bounded scheduling\n");

    let net = Network::new();
    let opts = GraphOptions {
        channel_capacity: 16, // two i64 per channel
        ..Default::default()
    };
    let out = hamming(&net, count, &opts);
    net.start();
    net.join().expect("hamming run");
    report(
        &format!("Hamming (Figure 12), {count} values, 16-byte channels"),
        &net,
        out.lock().unwrap().len(),
    );

    let net = Network::new();
    let out = mod_merge_dag(&net, 10, count, 8);
    net.start();
    net.join().expect("dag run");
    report(
        &format!("mod/merge DAG (Figure 13), divisor 10, {count} values, 8-byte starved branch"),
        &net,
        out.lock().unwrap().len(),
    );
    println!(
        "note: in the Figure 13 study the single grown channel is the 'others'\n\
         branch the paper identifies; it settles once its capacity fits the\n\
         divisor-1 = 9 queued values."
    );
}
