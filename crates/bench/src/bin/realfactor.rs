//! Real-computation companion to Table 2: runs the §5.2 factorization with
//! *actual* bignum arithmetic (no synthetic sleeping) on this machine's
//! real cores, under both load-balancing schemas.
//!
//! This complements the virtual-CPU harness: the synthetic runs reproduce
//! the paper's heterogeneous 34-CPU *shapes*; this run shows genuine
//! CPU-bound speedup of the same process networks on real hardware.
//!
//! The workload searches the full difference range with the factor planted
//! at the very end, so every task does full work (NotFound until the last).
//!
//! Defaults are the paper's exact experiment: 512-bit P, 1024-bit N,
//! 2048 tasks of 32 differences.
//!
//! ```text
//! cargo run -p kpn-bench --release --bin realfactor [-- --bits 512 --tasks 2048]
//! ```

use kpn_bignum::{make_weak_key, SearchOutcome};
use kpn_core::Network;
use kpn_parallel::{
    factor_task_stream, meta_dynamic, meta_static, register_stock_tasks, Consumer, Producer,
    TaskEnvelope, TaskTypeRegistry,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const BATCH: u64 = 32;

fn run(n: &kpn_bignum::BigUint, tasks: u64, workers: usize, dynamic: bool) -> f64 {
    let mut registry = TaskTypeRegistry::new();
    register_stock_tasks(&mut registry);
    let registry = registry.into_shared();
    let net = Network::new();
    let (tw, tr) = net.channel();
    let (rw, rr) = net.channel();
    net.add(Producer::new(
        factor_task_stream(n.clone(), tasks, BATCH),
        tw,
    ));
    let speeds = vec![1.0; workers];
    if dynamic {
        meta_dynamic(&net, registry, &speeds, tr, rw);
    } else {
        meta_static(&net, registry, &speeds, tr, rw);
    }
    net.add(Consumer::new(rr, move |env: TaskEnvelope| {
        Ok(!matches!(
            env.unpack::<SearchOutcome>()?,
            SearchOutcome::Found { .. }
        ))
    }));
    let start = Instant::now();
    net.run().expect("factor network");
    start.elapsed().as_secs_f64()
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut bits = 512u64;
    let mut tasks = 2048u64;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--bits" => {
                bits = argv[i + 1].parse().expect("--bits N");
                i += 2;
            }
            "--tasks" => {
                tasks = argv[i + 1].parse().expect("--tasks N");
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    // Plant the factor in the final task: full work for every run.
    let d = (tasks - 1) * 2 * BATCH + BATCH;
    let mut rng = StdRng::seed_from_u64(0x4EA1);
    let key = make_weak_key(bits, d - (d % 2), &mut rng);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "real factorization: {bits}-bit P, {tasks} tasks x {BATCH} differences, {cores} cores\n"
    );
    println!("  workers |  static (s, speedup) | dynamic (s, speedup)");
    println!("  --------+----------------------+---------------------");
    let base_static = run(&key.n, tasks, 1, false);
    let base_dynamic = run(&key.n, tasks, 1, true);
    println!("        1 |  {base_static:>7.2}   1.00x     |  {base_dynamic:>7.2}   1.00x");
    let mut w = 2;
    while w <= cores.min(16) {
        let st = run(&key.n, tasks, w, false);
        let dy = run(&key.n, tasks, w, true);
        println!(
            "     {w:>4} |  {st:>7.2}   {:>4.2}x     |  {dy:>7.2}   {:>4.2}x",
            base_static / st,
            base_dynamic / dy
        );
        w *= 2;
    }
    println!("\n  note: homogeneous real cores — static and dynamic should be close;");
    println!("  speedup saturates at the physical core count.");
}
