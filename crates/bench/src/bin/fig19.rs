//! Regenerates **Figure 19** (elapsed time vs workers): the full 1..=32
//! sweep of the ideal model, MetaStatic and MetaDynamic, emitted as CSV
//! series ready for plotting.
//!
//! ```text
//! cargo run -p kpn-bench --release --bin fig19 [-- --tasks N --scale MS]
//! ```

use kpn_bench::{measure, HarnessConfig, Schema};
use kpn_cluster::ideal_time_minutes;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = HarnessConfig::from_args(&args);
    eprintln!(
        "# Figure 19 sweep: {} tasks, {} ms per paper-minute",
        cfg.tasks, cfg.scale.millis_per_minute
    );
    println!("workers,ideal_minutes,static_minutes,dynamic_minutes");
    for n in 1..=32usize {
        let ideal = ideal_time_minutes(&cfg.inventory, n);
        let st = measure(&cfg, Schema::Static, n);
        let dy = measure(&cfg, Schema::Dynamic, n);
        println!("{n},{ideal:.4},{:.4},{:.4}", st.minutes, dy.minutes);
    }
    eprintln!("# expected: static curve rises above ideal at 8 workers; dynamic hugs ideal");
}
