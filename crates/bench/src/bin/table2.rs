//! Regenerates **Table 2** (parallel execution): elapsed time and speedup
//! for the ideal model, the MetaStatic schema, and the MetaDynamic schema
//! at 1, 2, 4, 8, 16 and 32 workers drawn fastest-first from the paper's
//! 34-CPU heterogeneous pool.
//!
//! ```text
//! cargo run -p kpn-bench --release --bin table2 [-- --tasks N --scale MS]
//! ```

use kpn_bench::{f2, measure, HarnessConfig, Schema};
use kpn_cluster::{ideal_speed, ideal_time_minutes, BASELINE_MINUTES};

const PAPER: [(usize, f64, f64, f64, f64, f64, f64); 6] = [
    // workers, ideal t, ideal s, static t, static s, dynamic t, dynamic s
    (1, 11.63, 1.93, 12.15, 1.85, 12.39, 1.82),
    (2, 6.17, 3.65, 6.93, 3.25, 6.57, 3.43),
    (4, 3.18, 7.08, 3.55, 6.34, 3.44, 6.54),
    (8, 1.70, 13.22, 3.03, 7.42, 1.87, 12.02),
    (16, 1.06, 21.22, 1.63, 13.80, 1.20, 18.73),
    (32, 0.63, 35.97, 1.00, 22.42, 0.76, 29.77),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = HarnessConfig::from_args(&args);
    println!(
        "Table 2: Parallel Execution ({} tasks, {} ms per paper-minute, 34-CPU pool)",
        cfg.tasks, cfg.scale.millis_per_minute
    );
    println!();
    println!("          |     Ideal      |         Static          |         Dynamic");
    println!("  workers |  time   speed  |  time   speed  (paper)  |  time   speed  (paper)");
    println!("  --------+----------------+-------------------------+------------------------");
    for (n, _it, _is, pst, _pss, pdt, _pds) in PAPER {
        let ideal_t = ideal_time_minutes(&cfg.inventory, n);
        let ideal_s = ideal_speed(&cfg.inventory, n);
        let st = measure(&cfg, Schema::Static, n);
        let dy = measure(&cfg, Schema::Dynamic, n);
        assert_eq!(st.results, cfg.tasks);
        assert_eq!(dy.results, cfg.tasks);
        println!(
            "     {n:>4} | {}  {} | {}  {}  ({})  | {}  {}  ({})",
            f2(ideal_t, 6),
            f2(ideal_s, 6),
            f2(st.minutes, 6),
            f2(st.speed, 6),
            f2(pst, 5),
            f2(dy.minutes, 6),
            f2(dy.speed, 6),
            f2(pdt, 5),
        );
    }
    println!();
    println!(
        "  baseline: {BASELINE_MINUTES:.2} class-C paper-minutes of work; \
         speed = baseline / elapsed."
    );
    println!(
        "  expected shape: static stalls once the first class-C CPU joins (8 workers);\n  \
         dynamic tracks the ideal curve to within scheduling overhead."
    );
}
