//! Executor scaling benchmark: thread-per-process vs the pooled executor,
//! swept over pooled worker counts.
//!
//! Two shapes at three sizes, timed under the thread executor and under
//! the pooled executor at 1, 2, and 4 workers:
//!
//! * **pipeline** — a `Sequence` source feeding N chained `Scale` stages
//!   into a `Collect` sink (N+2 processes, every token crosses N+1
//!   channels);
//! * **fan-out** — a `Sequence` source into one `Duplicate(xN)` feeding N
//!   `Discard` sinks (N+2 processes, one hot process with N outputs).
//!
//! The point being measured is not raw token throughput (the channels
//! benchmark covers that) but what process *count* costs each executor:
//! thread mode pays one OS thread (stack, scheduler presence, context
//! switches through the kernel) per process, the pooled executor pays one
//! parked continuation and runs everything on a fixed worker pool with
//! per-worker work-stealing run queues. Each pooled run also reports the
//! scheduler's own attribution counters — hot-slot hits, local pops,
//! injector traffic, steals, parks — so a regression in the dispatch mix
//! (e.g. hot-slot handoffs degrading to injector round-trips) is visible
//! in the numbers, not just in the total.
//!
//! ```text
//! cargo run -p kpn-bench --release --bin scaling [-- OUT.json]
//! ```
//!
//! Writes `bench_results/BENCH_scaling.json` (or the given path) and
//! prints the same JSON to stdout.

use kpn_core::stdlib::{Collect, Discard, Duplicate, Scale, Sequence};
use kpn_core::{ExecMode, Network, NetworkConfig, SchedulerStats};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

const SIZES: [usize; 3] = [100, 1_000, 10_000];
const TOKENS: u64 = 50;
/// Pooled worker counts swept per matrix point. The first entry is the
/// headline configuration `thread_over_pooled` is computed against.
const WORKER_SWEEP: [usize; 3] = [1, 2, 4];

fn net_with(mode: ExecMode) -> Network {
    Network::with_config(NetworkConfig {
        mode,
        ..Default::default()
    })
}

/// Elapsed seconds plus the executor's scheduling counters (pooled only).
struct Sample {
    secs: f64,
    sched: Option<SchedulerStats>,
}

/// Sequence -> Scale x N -> Collect.
fn pipeline(mode: ExecMode, stages: usize) -> Sample {
    let net = net_with(mode);
    let (head_w, mut tail_r) = net.channel_with_capacity(64);
    net.add(Sequence::new(0, TOKENS, head_w));
    for _ in 0..stages {
        let (w, r) = net.channel_with_capacity(64);
        net.add(Scale::new(1, tail_r, w));
        tail_r = r;
    }
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Collect::new(tail_r, out.clone()));
    let start = Instant::now();
    net.run().expect("pipeline run");
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(
        out.lock().unwrap().len(),
        TOKENS as usize,
        "pipeline lost tokens"
    );
    let sched = net.monitor().stats().scheduler;
    Sample { secs, sched }
}

/// Sequence -> Duplicate(xN) -> Discard x N.
fn fan_out(mode: ExecMode, width: usize) -> Sample {
    let net = net_with(mode);
    let (src_w, src_r) = net.channel_with_capacity(4096);
    net.add(Sequence::new(0, TOKENS, src_w));
    let mut writers = Vec::with_capacity(width);
    let mut readers = Vec::with_capacity(width);
    for _ in 0..width {
        let (w, r) = net.channel_with_capacity(4096);
        writers.push(w);
        readers.push(r);
    }
    net.add(Duplicate::new(src_r, writers));
    for r in readers {
        net.add(Discard::new(r));
    }
    let start = Instant::now();
    net.run().expect("fan-out run");
    let secs = start.elapsed().as_secs_f64();
    let sched = net.monitor().stats().scheduler;
    Sample { secs, sched }
}

struct PooledRun {
    workers: usize,
    secs: f64,
    sched: Option<SchedulerStats>,
}

struct Row {
    shape: &'static str,
    processes: usize,
    thread_s: f64,
    pooled: Vec<PooledRun>,
}

fn sched_json(s: &SchedulerStats) -> String {
    let t = s.totals();
    let mut per_worker = String::new();
    for (i, w) in s.workers.iter().enumerate() {
        let sep = if i + 1 == s.workers.len() { "" } else { ", " };
        let _ = write!(
            per_worker,
            "{{\"switches\": {}, \"hot\": {}, \"local\": {}, \"injector\": {}, \"stolen\": {}, \"parks\": {}, \"max_depth\": {}}}{}",
            w.fiber_switches,
            w.hot_hits,
            w.local_pops,
            w.injector_pops,
            w.stolen_fibers,
            w.parks,
            w.max_queue_depth,
            sep
        );
    }
    format!(
        "{{\n            \"fiber_switches\": {},\n            \"hot_hits\": {},\n            \"local_pops\": {},\n            \"injector_pops\": {},\n            \"injector_pushes\": {},\n            \"steal_attempts\": {},\n            \"steal_successes\": {},\n            \"stolen_fibers\": {},\n            \"foreign_unparks\": {},\n            \"parks\": {},\n            \"per_worker\": [{}]\n          }}",
        t.fiber_switches,
        t.hot_hits,
        t.local_pops,
        t.injector_pops,
        s.injector_pushes,
        t.steal_attempts,
        t.steal_successes,
        t.stolen_fibers,
        s.foreign_unparks,
        t.parks,
        per_worker
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "bench_results/BENCH_scaling.json".to_string());
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut rows = Vec::new();
    for &n in &SIZES {
        for (shape, run) in [
            ("pipeline", pipeline as fn(ExecMode, usize) -> Sample),
            ("fan_out", fan_out as fn(ExecMode, usize) -> Sample),
        ] {
            let pooled: Vec<PooledRun> = WORKER_SWEEP
                .iter()
                .map(|&w| {
                    let s = run(ExecMode::Pooled { workers: w }, n);
                    PooledRun {
                        workers: w,
                        secs: s.secs,
                        sched: s.sched,
                    }
                })
                .collect();
            let thread_s = run(ExecMode::Thread, n).secs;
            let per_w: Vec<String> = pooled
                .iter()
                .map(|p| format!("w{}={:.3}s", p.workers, p.secs))
                .collect();
            eprintln!(
                "{shape:>8} n={n:<6} thread {thread_s:>8.3}s   pooled {}",
                per_w.join(" ")
            );
            rows.push(Row {
                shape,
                processes: n + 2,
                thread_s,
                pooled,
            });
        }
    }

    let mut results = String::new();
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let best = r
            .pooled
            .iter()
            .map(|p| p.secs)
            .fold(f64::INFINITY, f64::min);
        let headline = &r.pooled[0];
        let mut sweep = String::new();
        for (j, p) in r.pooled.iter().enumerate() {
            let psep = if j + 1 == r.pooled.len() { "" } else { "," };
            let sched = match &p.sched {
                Some(s) => sched_json(s),
                None => "null".to_string(),
            };
            let _ = write!(
                sweep,
                "        {{\n          \"workers\": {},\n          \"pooled_s\": {:.4},\n          \"thread_over_pooled\": {:.2},\n          \"scheduler\": {}\n        }}{}\n",
                p.workers,
                p.secs,
                r.thread_s / p.secs,
                sched,
                psep
            );
        }
        let _ = write!(
            results,
            "    \"{}_{}\": {{\n      \"processes\": {},\n      \"thread_s\": {:.4},\n      \"pooled_s\": {:.4},\n      \"thread_over_pooled\": {:.2},\n      \"best_pooled_s\": {:.4},\n      \"worker_sweep\": [\n{}      ]\n    }}{}\n",
            r.shape,
            r.processes - 2,
            r.processes,
            r.thread_s,
            headline.secs,
            r.thread_s / headline.secs,
            best,
            sweep,
            sep
        );
    }
    let largest = rows
        .iter()
        .rfind(|r| r.shape == "pipeline")
        .expect("at least one pipeline row");
    let json = format!(
        "{{\n  \"benchmark\": \"executor_scaling (crates/bench/src/bin/scaling.rs)\",\n  \"description\": \"Wall-clock time to run a pipeline (Sequence -> Scale x N -> Collect) and a fan-out (Sequence -> Duplicate(xN) -> Discard x N) of N+2 processes with {TOKENS} i64 tokens, under the thread-per-process executor vs the pooled executor at 1/2/4 workers. thread_over_pooled is computed against the 1-worker pool; each pooled run reports the scheduler's dispatch attribution (hot-slot hits, local pops, injector traffic, steals, parks). Measures the cost of process count, not token throughput.\",\n  \"machine\": \"linux x86_64, release build, {hw} hardware threads\",\n  \"date\": \"2026-08-08\",\n  \"results\": {{\n{results}  }},\n  \"acceptance\": \"the 10,000-stage pipeline must complete under the pooled executor on a fixed-size worker pool and beat thread mode at every matrix point; measured {largest:.3}s at 1 worker\",\n  \"notes\": \"Pooled-executor processes are parked continuations (256 KiB lazily committed stacks) on per-worker work-stealing run queues: an unparked consumer lands in its waker's LIFO hot slot and runs next on the cache-warm worker, so a pipeline token hop is a fiber switch, not a kernel round-trip plus a run-queue scan. Thread mode spawns one OS thread per process and pays kernel scheduling for each blocking channel op. On this single-hardware-thread machine the worker sweep measures scheduling overhead, not parallel speedup. Histories across executors and worker counts are verified identical by tests/exec_matrix.rs.\"\n}}\n",
        largest = largest.pooled[0].secs,
    );
    print!("{json}");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).expect("write results file");
    eprintln!("wrote {out_path}");
}
