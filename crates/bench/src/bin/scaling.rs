//! Executor scaling benchmark: thread-per-process vs the pooled executor.
//!
//! Two shapes at three sizes, timed under both executors:
//!
//! * **pipeline** — a `Sequence` source feeding N chained `Scale` stages
//!   into a `Collect` sink (N+2 processes, every token crosses N+1
//!   channels);
//! * **fan-out** — a `Sequence` source into one `Duplicate(xN)` feeding N
//!   `Discard` sinks (N+2 processes, one hot process with N outputs).
//!
//! The point being measured is not raw token throughput (the channels
//! benchmark covers that) but what process *count* costs each executor:
//! thread mode pays one OS thread (stack, scheduler presence, context
//! switches through the kernel) per process, the pooled executor pays one
//! parked continuation and runs everything on a fixed worker pool.
//!
//! ```text
//! cargo run -p kpn-bench --release --bin scaling [-- OUT.json]
//! ```
//!
//! Writes `bench_results/BENCH_scaling.json` (or the given path) and
//! prints the same JSON to stdout.

use kpn_core::stdlib::{Collect, Discard, Duplicate, Scale, Sequence};
use kpn_core::{ExecMode, Network, NetworkConfig};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

const SIZES: [usize; 3] = [100, 1_000, 10_000];
const TOKENS: u64 = 50;

fn net_with(mode: ExecMode) -> Network {
    Network::with_config(NetworkConfig {
        mode,
        ..Default::default()
    })
}

/// Sequence -> Scale x N -> Collect. Returns elapsed seconds.
fn pipeline(mode: ExecMode, stages: usize) -> f64 {
    let net = net_with(mode);
    let (head_w, mut tail_r) = net.channel_with_capacity(64);
    net.add(Sequence::new(0, TOKENS, head_w));
    for _ in 0..stages {
        let (w, r) = net.channel_with_capacity(64);
        net.add(Scale::new(1, tail_r, w));
        tail_r = r;
    }
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Collect::new(tail_r, out.clone()));
    let start = Instant::now();
    net.run().expect("pipeline run");
    let dt = start.elapsed().as_secs_f64();
    assert_eq!(out.lock().unwrap().len(), TOKENS as usize, "pipeline lost tokens");
    dt
}

/// Sequence -> Duplicate(xN) -> Discard x N. Returns elapsed seconds.
fn fan_out(mode: ExecMode, width: usize) -> f64 {
    let net = net_with(mode);
    let (src_w, src_r) = net.channel_with_capacity(4096);
    net.add(Sequence::new(0, TOKENS, src_w));
    let mut writers = Vec::with_capacity(width);
    let mut readers = Vec::with_capacity(width);
    for _ in 0..width {
        let (w, r) = net.channel_with_capacity(4096);
        writers.push(w);
        readers.push(r);
    }
    net.add(Duplicate::new(src_r, writers));
    for r in readers {
        net.add(Discard::new(r));
    }
    let start = Instant::now();
    net.run().expect("fan-out run");
    start.elapsed().as_secs_f64()
}

struct Row {
    shape: &'static str,
    processes: usize,
    thread_s: f64,
    pooled_s: f64,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "bench_results/BENCH_scaling.json".to_string());
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut rows = Vec::new();
    for &n in &SIZES {
        for (shape, run) in [
            ("pipeline", pipeline as fn(ExecMode, usize) -> f64),
            ("fan_out", fan_out as fn(ExecMode, usize) -> f64),
        ] {
            let pooled_s = run(ExecMode::Pooled { workers: 0 }, n);
            let thread_s = run(ExecMode::Thread, n);
            eprintln!(
                "{shape:>8} n={n:<6} thread {thread_s:>8.3}s   pooled {pooled_s:>8.3}s"
            );
            rows.push(Row {
                shape,
                processes: n + 2,
                thread_s,
                pooled_s,
            });
        }
    }

    let mut results = String::new();
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = write!(
            results,
            "    \"{}_{}\": {{\n      \"processes\": {},\n      \"thread_s\": {:.4},\n      \"pooled_s\": {:.4},\n      \"thread_over_pooled\": {:.2}\n    }}{}\n",
            r.shape,
            r.processes - 2,
            r.processes,
            r.thread_s,
            r.pooled_s,
            r.thread_s / r.pooled_s,
            sep
        );
    }
    let largest = rows
        .iter()
        .filter(|r| r.shape == "pipeline")
        .last()
        .expect("at least one pipeline row");
    let json = format!(
        "{{\n  \"benchmark\": \"executor_scaling (crates/bench/src/bin/scaling.rs)\",\n  \"description\": \"Wall-clock time to run a pipeline (Sequence -> Scale x N -> Collect) and a fan-out (Sequence -> Duplicate(xN) -> Discard x N) of N+2 processes with {TOKENS} i64 tokens, under the thread-per-process executor vs the pooled executor (KPN_EXEC=pooled, {workers} workers). Measures the cost of process count, not token throughput.\",\n  \"machine\": \"linux x86_64, release build, {workers} hardware threads\",\n  \"date\": \"2026-08-06\",\n  \"results\": {{\n{results}  }},\n  \"acceptance\": \"the 10,000-stage pipeline must complete under the pooled executor on a fixed-size worker pool; measured {largest:.3}s\",\n  \"notes\": \"Pooled-executor processes are parked continuations (256 KiB lazily committed stacks), so 10k processes need no OS threads beyond the worker pool. Thread mode spawns one OS thread per process and pays kernel scheduling for each blocking channel op. Histories across executors are verified identical by tests/exec_matrix.rs.\"\n}}\n",
        largest = largest.pooled_s,
    );
    print!("{json}");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).expect("write results file");
    eprintln!("wrote {out_path}");
}
