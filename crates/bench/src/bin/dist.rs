//! Distributed-algorithm scaling benchmark: synchronous communication
//! rounds per second on the pooled executor.
//!
//! Runs bipartite maximal matching (`kpn_dist::Bmm`) on random bipartite
//! 3-regular graphs of 1 000, 10 000, and 100 000 nodes under the pooled
//! executor at 1, 2, and 4 workers. Every graph node is one KPN process,
//! every edge two bounded byte channels; a round is one `u64` sent and
//! received on every edge, so an n-node run of R rounds moves
//! `2·edges·R` messages through the full blocking-channel machinery.
//!
//! The figure of merit is **rounds/sec** (network-global synchronous
//! rounds completed per second) and its per-node form
//! **node-rounds/sec** (`n·R/secs`, the process-step throughput the
//! executor sustains). Each run is verified against the lockstep
//! reference simulation before its time is accepted — a fast wrong
//! answer is not a result.
//!
//! ```text
//! cargo run -p kpn-bench --release --bin dist [-- OUT.json]
//! ```
//!
//! Writes `bench_results/BENCH_dist.json` (or the given path) and prints
//! the same JSON to stdout.

use kpn_core::{ExecMode, SchedulerStats};
use kpn_dist::{
    effective_rounds, random_bipartite_regular, run, simulate, Bmm, DistConfig, DistGraph,
};
use std::fmt::Write as _;
use std::time::Instant;

const SIZES: [usize; 3] = [1_000, 10_000, 100_000];
const DEGREE: usize = 3;
const WORKER_SWEEP: [usize; 3] = [1, 2, 4];
const SEED: u64 = 0xD15C;

struct Run {
    workers: usize,
    secs: f64,
    sched: Option<SchedulerStats>,
}

struct Row {
    n: usize,
    edges: usize,
    rounds: u64,
    matched: usize,
    sim_secs: f64,
    runs: Vec<Run>,
}

fn bench_graph(g: &DistGraph) -> Row {
    let colors = g.bipartition().expect("bipartite by construction");
    let rounds = effective_rounds::<Bmm>(g, kpn_dist::DEFAULT_MAX_ROUNDS);

    let start = Instant::now();
    let reference = simulate::<Bmm>(g, &colors, rounds).expect("reference simulation");
    let sim_secs = start.elapsed().as_secs_f64();
    let matched = kpn_dist::check_matching(g, &reference).expect("maximal matching");

    let runs = WORKER_SWEEP
        .iter()
        .map(|&workers| {
            let cfg = DistConfig {
                mode: ExecMode::Pooled { workers },
                ..DistConfig::default()
            };
            let start = Instant::now();
            let (out, report) = run::<Bmm>(g, &colors, cfg).expect("pooled run");
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(out, reference, "pooled:{workers} diverged from reference");
            assert_eq!(report.monitor.true_deadlocks, 0);
            eprintln!(
                "{} w={workers} {secs:>8.3}s  {:>7.1} rounds/s  {:>10.0} node-rounds/s",
                g.name(),
                rounds as f64 / secs,
                g.n() as f64 * rounds as f64 / secs,
            );
            Run {
                workers,
                secs,
                sched: report.monitor.scheduler,
            }
        })
        .collect();
    Row {
        n: g.n(),
        edges: g.edges().len(),
        rounds,
        matched,
        sim_secs,
        runs,
    }
}

fn sched_json(s: &SchedulerStats) -> String {
    let t = s.totals();
    format!(
        "{{\"fiber_switches\": {}, \"hot_hits\": {}, \"local_pops\": {}, \"injector_pops\": {}, \"injector_pushes\": {}, \"steal_attempts\": {}, \"steal_successes\": {}, \"stolen_fibers\": {}, \"foreign_unparks\": {}, \"parks\": {}}}",
        t.fiber_switches,
        t.hot_hits,
        t.local_pops,
        t.injector_pops,
        s.injector_pushes,
        t.steal_attempts,
        t.steal_successes,
        t.stolen_fibers,
        s.foreign_unparks,
        t.parks,
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "bench_results/BENCH_dist.json".to_string());
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let rows: Vec<Row> = SIZES
        .iter()
        .map(|&n| {
            let g = random_bipartite_regular(n, DEGREE, SEED).expect("generator");
            bench_graph(&g)
        })
        .collect();

    let mut results = String::new();
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let mut sweep = String::new();
        for (j, p) in r.runs.iter().enumerate() {
            let psep = if j + 1 == r.runs.len() { "" } else { "," };
            let sched = match &p.sched {
                Some(s) => sched_json(s),
                None => "null".to_string(),
            };
            let _ = write!(
                sweep,
                "        {{\n          \"workers\": {},\n          \"secs\": {:.4},\n          \"rounds_per_sec\": {:.2},\n          \"node_rounds_per_sec\": {:.0},\n          \"scheduler\": {}\n        }}{}\n",
                p.workers,
                p.secs,
                r.rounds as f64 / p.secs,
                r.n as f64 * r.rounds as f64 / p.secs,
                sched,
                psep
            );
        }
        let _ = write!(
            results,
            "    \"bmm_n{}\": {{\n      \"nodes\": {},\n      \"edges\": {},\n      \"rounds\": {},\n      \"matched_edges\": {},\n      \"reference_sim_s\": {:.4},\n      \"worker_sweep\": [\n{}      ]\n    }}{}\n",
            r.n, r.n, r.edges, r.rounds, r.matched, r.sim_secs, sweep, sep
        );
    }
    let json = format!(
        "{{\n  \"benchmark\": \"dist_rounds (crates/bench/src/bin/dist.rs)\",\n  \"description\": \"Synchronous communication rounds per second for bipartite maximal matching (kpn_dist::Bmm) on random bipartite {DEGREE}-regular graphs of 1k/10k/100k nodes, pooled executor at 1/2/4 workers. One KPN process per node, two bounded byte channels per edge, one u64 per channel per round; round count is the algorithm's 2*Delta+2 bound. Every run's per-node outputs are asserted equal to the lockstep reference simulation (reference_sim_s) before timing is accepted.\",\n  \"machine\": \"linux x86_64, release build, {hw} hardware threads\",\n  \"date\": \"2026-08-08\",\n  \"seed\": {SEED},\n  \"results\": {{\n{results}  }},\n  \"acceptance\": \"BMM on the 100k-node random graph completes on the pooled executor at every worker count with outputs bit-identical to the reference\",\n  \"notes\": \"Rounds are global: rounds_per_sec = R/secs counts full network sweeps, node_rounds_per_sec = n*R/secs counts process steps. The workload is communication-bound — each process computes a few comparisons per round then blocks on 2*degree channel ops — so this measures the executor's blocking-channel and fiber-switch machinery at scale, not arithmetic. On a single-hardware-thread machine the worker sweep shows scheduling overhead, not speedup. Conformance across thread/pooled/sim executors is pinned by tests/dist_algorithms.rs.\"\n}}\n",
    );
    print!("{json}");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).expect("write results file");
    eprintln!("wrote {out_path}");
}
