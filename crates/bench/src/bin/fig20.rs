//! Regenerates **Figure 20** (speedup vs workers): the full 1..=32 sweep,
//! speeds normalized to a 1 GHz Pentium III (class C), emitted as CSV.
//! The ideal curve shows the paper's two inflection points: worker 8
//! (first class-C CPU) and worker 27 (first class-E CPU).
//!
//! ```text
//! cargo run -p kpn-bench --release --bin fig20 [-- --tasks N --scale MS]
//! ```

use kpn_bench::{measure, HarnessConfig, Schema};
use kpn_cluster::ideal_speed;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = HarnessConfig::from_args(&args);
    eprintln!(
        "# Figure 20 sweep: {} tasks, {} ms per paper-minute",
        cfg.tasks, cfg.scale.millis_per_minute
    );
    println!("workers,ideal_speed,static_speed,dynamic_speed");
    for n in 1..=32usize {
        let ideal = ideal_speed(&cfg.inventory, n);
        let st = measure(&cfg, Schema::Static, n);
        let dy = measure(&cfg, Schema::Dynamic, n);
        println!("{n},{ideal:.4},{:.4},{:.4}", st.speed, dy.speed);
    }
    eprintln!(
        "# expected: ideal-speed slope drops at workers 8 and 27; static flattens\n\
         # after 8; dynamic tracks ideal minus startup overhead"
    );
}
