//! Net-backend scale benchmark: what a *blocked remote channel* costs in
//! OS threads under the thread backend vs the event-driven reactor
//! backend.
//!
//! For each backend and channel count N, the harness opens N loopback
//! remote channels on a 2-worker pooled executor, blocks a reader fiber
//! on every one of them at once, and records the peak OS thread count of
//! the process (sampled from `/proc/self/task` throughout). Under the
//! thread backend every blocked read pins a compensated OS thread via
//! `blocking_region`, so the peak grows linearly with N; under the
//! reactor backend blocked readers are parked fibers woken by epoll
//! readiness, so the peak stays at `workers + small constant` no matter
//! how large N gets. Every run then releases all N channels and checks
//! each reader got its value — the cheap waits must still be *correct*
//! waits.
//!
//! ```text
//! cargo run -p kpn-bench --release --bin netscale [-- OUT.json]
//! ```
//!
//! Writes `bench_results/BENCH_net.json` (or the given path) and prints
//! the same JSON to stdout.

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn main() {
    eprintln!("netscale needs linux x86_64 (/proc/self/task + the fiber executor)");
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn main() {
    imp::main()
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod imp {
    use kpn_core::exec::set_net_backend;
    use kpn_core::{DataReader, DataWriter, Exec, NetBackend, PooledExec};
    use kpn_net::{remote_reader, remote_writer, Acceptor};
    use std::fmt::Write as _;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    const SIZES: [usize; 3] = [128, 512, 1024];
    const WORKERS: usize = 2;

    fn os_threads() -> usize {
        std::fs::read_dir("/proc/self/task").unwrap().count()
    }

    /// Waits for stragglers from the previous run (compensation workers,
    /// linger threads) to retire so the next baseline is clean.
    fn settle() {
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut last = os_threads();
        let mut stable_since = Instant::now();
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
            let now = os_threads();
            if now < last {
                last = now;
                stable_since = Instant::now();
            } else if stable_since.elapsed() > Duration::from_millis(300) {
                return;
            }
        }
    }

    struct Run {
        channels: usize,
        baseline: usize,
        peak: usize,
        secs: f64,
    }

    /// One measurement: N readers blocked at once, peak thread count
    /// sampled throughout, then all channels released and drained.
    fn measure(backend: NetBackend, channels: usize) -> Run {
        settle();
        set_net_backend(Some(backend));
        let start = Instant::now();
        let acceptor = Acceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr().to_string();
        let baseline = os_threads();
        let ex = PooledExec::new(WORKERS);

        let done = Arc::new(AtomicUsize::new(0));
        for i in 0..channels {
            let (acceptor, d) = (acceptor.clone(), done.clone());
            ex.spawn(
                &format!("rd{i}"),
                Box::new(move || {
                    let mut r = DataReader::new(remote_reader(&acceptor, 0xBE9C0000 + i as u64));
                    assert_eq!(r.read_i64().unwrap(), i as i64);
                    d.fetch_add(1, Ordering::SeqCst);
                }),
            );
        }

        let mut peak = os_threads();
        let mut writers = Vec::with_capacity(channels);
        for i in 0..channels {
            writers.push(DataWriter::new(
                remote_writer(&addr, 0xBE9C0000 + i as u64).unwrap(),
            ));
            peak = peak.max(os_threads());
        }

        // Barrier: every reader is in its blocked wait. The reactor
        // counts registered fds; the thread backend counts externally
        // blocked (compensated) workers.
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            peak = peak.max(os_threads());
            let stats = ex.scheduler_stats().expect("pooled stats");
            let blocked = match backend {
                NetBackend::Reactor => stats.reactor.map(|r| r.current_registered).unwrap_or(0),
                NetBackend::Threads => stats.blocked_workers,
            };
            if blocked >= channels {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "{backend:?}: only {blocked}/{channels} readers reached their blocked wait"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        for _ in 0..25 {
            peak = peak.max(os_threads());
            std::thread::sleep(Duration::from_millis(1));
        }

        for (i, w) in writers.iter_mut().enumerate() {
            w.write_i64(i as i64).unwrap();
            w.flush().unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(120);
        while done.load(Ordering::SeqCst) < channels {
            assert!(
                Instant::now() < deadline,
                "{backend:?}: only {}/{channels} readers completed",
                done.load(Ordering::SeqCst)
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        drop(writers);
        ex.shutdown();
        set_net_backend(None);
        Run {
            channels,
            baseline,
            peak,
            secs: start.elapsed().as_secs_f64(),
        }
    }

    pub(super) fn main() {
        let out_path = std::env::args()
            .nth(1)
            .unwrap_or_else(|| "bench_results/BENCH_net.json".to_string());
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);

        let mut sections = String::new();
        let mut reactor_worst = 0usize;
        for (bi, (name, backend)) in [
            ("threads", NetBackend::Threads),
            ("reactor", NetBackend::Reactor),
        ]
        .into_iter()
        .enumerate()
        {
            let mut rows = String::new();
            for (i, &n) in SIZES.iter().enumerate() {
                let r = measure(backend, n);
                let over = r.peak - r.baseline;
                eprintln!(
                    "{name:>8} n={n:<5} baseline {:>3} peak {:>5} (+{over:<5}) {:.3}s",
                    r.baseline, r.peak, r.secs
                );
                if backend == NetBackend::Reactor {
                    reactor_worst = reactor_worst.max(over);
                }
                let sep = if i + 1 == SIZES.len() { "" } else { "," };
                let _ = writeln!(
                    rows,
                    "      {{\"channels\": {}, \"baseline_threads\": {}, \"peak_threads\": {}, \"peak_over_baseline\": {}, \"run_s\": {:.3}}}{}",
                    r.channels, r.baseline, r.peak, over, r.secs, sep
                );
            }
            let sep = if bi == 1 { "" } else { "," };
            let _ = write!(sections, "    \"{name}\": [\n{rows}    ]{sep}\n");
        }

        let json = format!(
            "{{\n  \"benchmark\": \"net_backend_scale (crates/bench/src/bin/netscale.rs)\",\n  \"description\": \"Peak OS thread count while N loopback remote channels are all blocked reading at once on a {WORKERS}-worker pooled executor, under the thread net backend (each blocked read pins a compensated OS thread via blocking_region) vs the reactor backend (blocked reads are fibers parked on epoll readiness). Every run then releases all N channels and verifies each reader received its value. peak_over_baseline is the thread cost attributable to the blocked channels plus the pool itself.\",\n  \"machine\": \"linux x86_64, release build, {hw} hardware threads\",\n  \"date\": \"2026-08-08\",\n  \"results\": {{\n{sections}  }},\n  \"acceptance\": \"reactor peak_over_baseline must stay <= workers + 4 at every size while the thread backend grows linearly in N; measured worst reactor overhead {reactor_worst} threads at 1024 channels\",\n  \"notes\": \"The thread rows are the paper's shape (one blocking socket wait per blocked remote endpoint, PAPER.md section 4) as carried by PR 4's compensation scheme; the reactor rows are ISSUE 9's event-driven backend (DESIGN.md section 5j). Determinacy across the two backends is pinned by tests/reactor_determinacy.rs; the reactor bound is asserted as a regression test in tests/net_scale.rs.\"\n}}\n"
        );
        print!("{json}");
        if let Some(dir) = std::path::Path::new(&out_path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&out_path, &json).expect("write results file");
        eprintln!("wrote {out_path}");
    }
}
