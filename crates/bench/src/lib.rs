//! Shared measurement harness behind the `table1`/`table2`/`fig19`/`fig20`
//! binaries: builds the paper's parallel-factorization process networks
//! with simulated heterogeneous workers and measures elapsed wall time.
//!
//! Substitution (see DESIGN.md): the paper's 34 physical CPUs are modelled
//! by *virtual CPUs* — workers whose synthetic tasks sleep for
//! `cost / speed`. Because tasks are sleep-bound, dozens of virtual CPUs
//! coexist faithfully on one machine, and the quantity under study (the
//! static vs dynamic *schedules*) is identical to the paper's.

#![warn(missing_docs)]

use kpn_cluster::{Inventory, TimeScale, BASELINE_MINUTES};
use kpn_core::Network;
use kpn_parallel::{
    meta_dynamic, meta_static, register_stock_tasks, synthetic_task_stream, Consumer, Producer,
    TaskEnvelope, TaskTypeRegistry, Worker,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Which load-balancing schema to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schema {
    /// Figure 16: Scatter/Gather, equal task counts.
    Static,
    /// Figure 17: Direct + indexed merge, on-demand.
    Dynamic,
    /// Figure 1: single worker pipeline (used by Table 1).
    Pipeline,
}

/// One measured run.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Workers used.
    pub workers: usize,
    /// Schema measured.
    pub schema: Schema,
    /// Elapsed time converted back to paper minutes.
    pub minutes: f64,
    /// Speed normalized to the class-C baseline.
    pub speed: f64,
    /// Results delivered (must equal the task count).
    pub results: u64,
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Tasks per run; per-task work is `BASELINE_MINUTES / tasks`, so the
    /// total workload is always the paper's 22.5 class-C minutes.
    pub tasks: u64,
    /// Wall-clock scale.
    pub scale: TimeScale,
    /// CPU pool.
    pub inventory: Inventory,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            tasks: 512,
            scale: TimeScale {
                millis_per_minute: 400.0,
            },
            inventory: Inventory::paper(),
        }
    }
}

impl HarnessConfig {
    /// Per-task work in paper minutes.
    pub fn task_minutes(&self) -> f64 {
        BASELINE_MINUTES / self.tasks as f64
    }

    /// Parses `--tasks N`, `--scale MS_PER_MIN` style CLI overrides.
    pub fn from_args(args: &[String]) -> Self {
        let mut cfg = HarnessConfig::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--tasks" => {
                    cfg.tasks = args[i + 1].parse().expect("--tasks takes a number");
                    i += 2;
                }
                "--scale" => {
                    cfg.scale.millis_per_minute = args[i + 1]
                        .parse()
                        .expect("--scale takes a number (ms/min)");
                    i += 2;
                }
                other => panic!("unknown argument {other}; known: --tasks N, --scale MS"),
            }
        }
        cfg
    }
}

fn task_registry() -> Arc<TaskTypeRegistry> {
    let mut reg = TaskTypeRegistry::new();
    register_stock_tasks(&mut reg);
    reg.into_shared()
}

/// Runs one configuration and measures elapsed wall time.
pub fn measure(cfg: &HarnessConfig, schema: Schema, workers: usize) -> Measurement {
    let cost_units = cfg.scale.task_cost_units(cfg.task_minutes());
    let registry = task_registry();
    let net = Network::new();
    let (task_w, task_r) = net.channel();
    let (res_w, res_r) = net.channel();
    net.add(Producer::new(
        synthetic_task_stream(cfg.tasks, cost_units),
        task_w,
    ));
    let speeds = cfg.inventory.speeds(workers);
    match schema {
        Schema::Static => meta_static(&net, registry, &speeds, task_r, res_w),
        Schema::Dynamic => meta_dynamic(&net, registry, &speeds, task_r, res_w),
        Schema::Pipeline => {
            assert_eq!(workers, 1, "pipeline is single-worker");
            net.add(Worker::new(registry, task_r, res_w).with_speed(speeds[0]));
        }
    }
    let delivered = Arc::new(AtomicU64::new(0));
    let counter = delivered.clone();
    net.add(Consumer::new(res_r, move |_env: TaskEnvelope| {
        counter.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }));
    let start = Instant::now();
    net.run().expect("harness network failed");
    let elapsed = start.elapsed();
    let minutes = cfg.scale.to_minutes(elapsed);
    Measurement {
        workers,
        schema,
        minutes,
        speed: BASELINE_MINUTES / minutes,
        results: delivered.load(Ordering::Relaxed),
    }
}

/// Runs one sequential measurement on a single CPU of the given class
/// (Table 1's rows): the whole workload through a lone worker.
pub fn measure_sequential(cfg: &HarnessConfig, class: kpn_cluster::CpuClass) -> Measurement {
    let cost_units = cfg.scale.task_cost_units(cfg.task_minutes());
    let registry = task_registry();
    let net = Network::new();
    let (task_w, task_r) = net.channel();
    let (res_w, res_r) = net.channel();
    net.add(Producer::new(
        synthetic_task_stream(cfg.tasks, cost_units),
        task_w,
    ));
    net.add(Worker::new(registry, task_r, res_w).with_speed(class.speed()));
    let delivered = Arc::new(AtomicU64::new(0));
    let counter = delivered.clone();
    net.add(Consumer::new(res_r, move |_env: TaskEnvelope| {
        counter.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }));
    let start = Instant::now();
    net.run().expect("harness network failed");
    let minutes = cfg.scale.to_minutes(start.elapsed());
    Measurement {
        workers: 1,
        schema: Schema::Pipeline,
        minutes,
        speed: BASELINE_MINUTES / minutes,
        results: delivered.load(Ordering::Relaxed),
    }
}

/// Formats a float with two decimals, right-aligned to `w`.
pub fn f2(v: f64, w: usize) -> String {
    format!("{v:>w$.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> HarnessConfig {
        HarnessConfig {
            tasks: 64,
            scale: TimeScale {
                millis_per_minute: 20.0,
            },
            inventory: Inventory::paper(),
        }
    }

    #[test]
    fn all_results_delivered() {
        let cfg = quick();
        for schema in [Schema::Static, Schema::Dynamic] {
            let m = measure(&cfg, schema, 4);
            assert_eq!(m.results, cfg.tasks, "{schema:?}");
        }
    }

    #[test]
    fn dynamic_not_slower_than_static_with_heterogeneous_pool() {
        let cfg = HarnessConfig {
            tasks: 96,
            scale: TimeScale {
                millis_per_minute: 40.0,
            },
            inventory: Inventory::paper(),
        };
        // 8 workers includes the slow class-C CPU that stalls the static
        // schema (§5.2).
        let st = measure(&cfg, Schema::Static, 8);
        let dy = measure(&cfg, Schema::Dynamic, 8);
        assert!(
            dy.minutes < st.minutes * 1.05,
            "dynamic {:.2} vs static {:.2}",
            dy.minutes,
            st.minutes
        );
    }

    #[test]
    fn sequential_speed_tracks_class() {
        let cfg = quick();
        let a = measure_sequential(&cfg, kpn_cluster::CpuClass::A);
        let e = measure_sequential(&cfg, kpn_cluster::CpuClass::E);
        assert!(a.minutes < e.minutes);
    }

    #[test]
    fn config_parses_args() {
        let cfg = HarnessConfig::from_args(&[
            "--tasks".into(),
            "128".into(),
            "--scale".into(),
            "5".into(),
        ]);
        assert_eq!(cfg.tasks, 128);
        assert!((cfg.scale.millis_per_minute - 5.0).abs() < 1e-9);
    }
}
