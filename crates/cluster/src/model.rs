//! CPU classes, inventory, ideal curves, and analytic schedule models.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Sequential execution time of the full factoring workload on the class-C
/// baseline (Table 1, minutes).
pub const BASELINE_MINUTES: f64 = 22.50;

/// The paper's task count: "the factor P would be found after executing
/// 2048 worker tasks".
pub const PAPER_TASKS: u64 = 2048;

/// Work per task in class-C minutes (`BASELINE_MINUTES / PAPER_TASKS`).
pub const PAPER_TASK_MINUTES: f64 = BASELINE_MINUTES / PAPER_TASKS as f64;

/// The five CPU classes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CpuClass {
    /// 2.4 GHz Pentium 4 — 11.63 min sequential.
    A,
    /// 2.2 GHz Pentium 4 — 13.13 min.
    B,
    /// 1.0 GHz Pentium III — 22.50 min (the normalization baseline).
    C,
    /// (CPU description not reported in Table 1) — 22.78 min.
    D,
    /// 700 MHz Pentium III Xeon (8-way SMP) — 28.14 min.
    E,
}

impl CpuClass {
    /// All classes, fastest first.
    pub const ALL: [CpuClass; 5] = [
        CpuClass::A,
        CpuClass::B,
        CpuClass::C,
        CpuClass::D,
        CpuClass::E,
    ];

    /// Sequential execution time of the workload (Table 1, minutes).
    pub fn sequential_minutes(self) -> f64 {
        match self {
            CpuClass::A => 11.63,
            CpuClass::B => 13.13,
            CpuClass::C => 22.50,
            CpuClass::D => 22.78,
            CpuClass::E => 28.14,
        }
    }

    /// Speed normalized to a 1 GHz Pentium III (Table 1's Speed column:
    /// `22.50 / sequential_minutes`).
    pub fn speed(self) -> f64 {
        BASELINE_MINUTES / self.sequential_minutes()
    }

    /// The hardware description from Table 1.
    pub fn description(self) -> &'static str {
        match self {
            CpuClass::A => "2.4 GHz Pentium 4",
            CpuClass::B => "2.2 GHz Pentium 4",
            CpuClass::C => "1.0 GHz Pentium III",
            CpuClass::D => "(unreported)",
            CpuClass::E => "700 MHz Pentium III Xeon",
        }
    }
}

/// A pool of CPUs by class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Inventory {
    /// `(class, cpu count)` entries, fastest class first.
    pub entries: Vec<(CpuClass, usize)>,
}

impl Inventory {
    /// The paper's pool: 25 computers, 34 CPUs — 1×A, 6×B, 15×C, 4×D
    /// (two dual-CPU machines), 8×E (one 8-way machine). The counts are
    /// fixed by Table 1's machine list and confirmed by reproducing the
    /// ideal-speed column of Table 2 to within rounding.
    pub fn paper() -> Self {
        Inventory {
            entries: vec![
                (CpuClass::A, 1),
                (CpuClass::B, 6),
                (CpuClass::C, 15),
                (CpuClass::D, 4),
                (CpuClass::E, 8),
            ],
        }
    }

    /// A homogeneous pool of `n` class-C CPUs.
    pub fn homogeneous(n: usize) -> Self {
        Inventory {
            entries: vec![(CpuClass::C, n)],
        }
    }

    /// Total CPUs available.
    pub fn total_cpus(&self) -> usize {
        self.entries.iter().map(|(_, n)| n).sum()
    }

    /// The classes of the first `n` workers, allocated fastest-first
    /// ("CPUs in the fastest categories are used first", §5.2).
    pub fn allocate(&self, n: usize) -> Vec<CpuClass> {
        assert!(
            n <= self.total_cpus(),
            "requested {n} workers from a {}-CPU inventory",
            self.total_cpus()
        );
        let mut out = Vec::with_capacity(n);
        for &(class, count) in &self.entries {
            for _ in 0..count {
                if out.len() == n {
                    return out;
                }
                out.push(class);
            }
        }
        out
    }

    /// Speeds of the first `n` workers, fastest-first.
    pub fn speeds(&self, n: usize) -> Vec<f64> {
        self.allocate(n).into_iter().map(CpuClass::speed).collect()
    }
}

/// One physical computer in the paper's laboratory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Machine {
    /// CPU class of every CPU in this machine.
    pub class: CpuClass,
    /// Number of CPUs ("some of the computers had a single CPU, some had
    /// two, and one computer had eight").
    pub cpus: usize,
}

/// The paper's 25 computers: 1 class-A single, 6 class-B singles, 15
/// class-C singles, 2 class-D duals, and one 8-way class-E machine —
/// the unique machine mix consistent with "a total of 25 computers with
/// 34 CPUs ... 1 in class A, 6 in class B, 15 in class C, 2 in class D,
/// and 1 in class E" plus Table 1's "8 × 700 MHz Pentium III Xeon".
pub fn paper_machines() -> Vec<Machine> {
    let mut machines = Vec::with_capacity(25);
    machines.push(Machine {
        class: CpuClass::A,
        cpus: 1,
    });
    machines.extend((0..6).map(|_| Machine {
        class: CpuClass::B,
        cpus: 1,
    }));
    machines.extend((0..15).map(|_| Machine {
        class: CpuClass::C,
        cpus: 1,
    }));
    machines.extend((0..2).map(|_| Machine {
        class: CpuClass::D,
        cpus: 2,
    }));
    machines.push(Machine {
        class: CpuClass::E,
        cpus: 8,
    });
    machines
}

impl Inventory {
    /// Builds the CPU pool from a machine list (fastest class first, the
    /// paper's allocation order).
    pub fn from_machines(machines: &[Machine]) -> Self {
        let mut counts: std::collections::BTreeMap<String, (CpuClass, usize)> =
            std::collections::BTreeMap::new();
        for m in machines {
            counts
                .entry(format!("{:?}", m.class))
                .or_insert((m.class, 0))
                .1 += m.cpus;
        }
        let mut entries: Vec<(CpuClass, usize)> = counts.into_values().collect();
        entries.sort_by(|a, b| {
            b.0.speed()
                .partial_cmp(&a.0.speed())
                .expect("speeds are finite")
        });
        Inventory { entries }
    }
}

/// Ideal aggregate speed with `n` workers (Table 2's Ideal Speed: the sum
/// of the allocated CPUs' speeds).
pub fn ideal_speed(inventory: &Inventory, n: usize) -> f64 {
    inventory.speeds(n).iter().sum()
}

/// Ideal elapsed time with `n` workers (Table 2's Ideal Time:
/// `BASELINE_MINUTES / ideal_speed`).
pub fn ideal_time_minutes(inventory: &Inventory, n: usize) -> f64 {
    BASELINE_MINUTES / ideal_speed(inventory, n)
}

/// Analytic makespan of the MetaStatic schema (Figure 16): tasks are dealt
/// round-robin, so worker `w` of `n` gets `⌈(tasks - w) / n⌉` tasks and the
/// run ends when the slowest-loaded worker finishes.
pub fn static_makespan_minutes(
    inventory: &Inventory,
    n: usize,
    tasks: u64,
    task_minutes: f64,
) -> f64 {
    let speeds = inventory.speeds(n);
    let mut worst: f64 = 0.0;
    for (w, s) in speeds.iter().enumerate() {
        let assigned = (tasks + n as u64 - 1 - w as u64) / n as u64;
        worst = worst.max(assigned as f64 * task_minutes / s);
    }
    worst
}

/// Analytic makespan of the MetaDynamic schema (Figure 17): greedy
/// on-demand dispatch — each task goes to the worker that becomes free
/// first, which is exactly what the Direct/indexed-merge loop implements.
pub fn dynamic_makespan_minutes(
    inventory: &Inventory,
    n: usize,
    tasks: u64,
    task_minutes: f64,
) -> f64 {
    let speeds = inventory.speeds(n);
    let mut free_at = vec![0.0f64; n];
    for _ in 0..tasks {
        // Next free worker (ties: lowest index, matching the initial
        // injection order).
        let (w, _) = free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        free_at[w] += task_minutes / speeds[w];
    }
    free_at.iter().cloned().fold(0.0, f64::max)
}

/// Conversion between the paper's minutes and harness wall-clock time.
/// The default maps one paper-minute to one second, giving ~11 ms
/// per class-C task — coarse enough for the sleep timer, fine enough that
/// a full Table 2 sweep runs in about a minute.
#[derive(Debug, Clone, Copy)]
pub struct TimeScale {
    /// Harness milliseconds per paper minute.
    pub millis_per_minute: f64,
}

impl Default for TimeScale {
    fn default() -> Self {
        TimeScale {
            millis_per_minute: 1000.0,
        }
    }
}

impl TimeScale {
    /// Converts paper minutes to a harness duration.
    pub fn to_duration(&self, minutes: f64) -> Duration {
        Duration::from_secs_f64(minutes * self.millis_per_minute / 1000.0)
    }

    /// Converts a measured harness duration back to paper minutes.
    pub fn to_minutes(&self, d: Duration) -> f64 {
        d.as_secs_f64() * 1000.0 / self.millis_per_minute
    }

    /// Task cost in harness milliseconds-at-speed-1 for a task worth
    /// `task_minutes` of class-C time.
    pub fn task_cost_units(&self, task_minutes: f64) -> f64 {
        task_minutes * self.millis_per_minute
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> Inventory {
        Inventory::paper()
    }

    #[test]
    fn speeds_match_table1() {
        assert!((CpuClass::A.speed() - 1.93).abs() < 0.01);
        assert!((CpuClass::B.speed() - 1.71).abs() < 0.01);
        assert!((CpuClass::C.speed() - 1.00).abs() < 1e-9);
        assert!((CpuClass::E.speed() - 0.80).abs() < 0.01);
    }

    #[test]
    fn inventory_totals() {
        assert_eq!(paper().total_cpus(), 34);
    }

    #[test]
    fn allocation_is_fastest_first() {
        let alloc = paper().allocate(9);
        assert_eq!(alloc[0], CpuClass::A);
        assert_eq!(&alloc[1..7], &[CpuClass::B; 6]);
        assert_eq!(&alloc[7..9], &[CpuClass::C; 2]);
    }

    #[test]
    #[should_panic(expected = "requested")]
    fn over_allocation_panics() {
        paper().allocate(35);
    }

    #[test]
    fn ideal_times_match_table2() {
        // Table 2's Ideal column: workers → (time, speed).
        let expect = [
            (1, 11.63, 1.93),
            (2, 6.17, 3.65),
            (4, 3.18, 7.08),
            (8, 1.70, 13.22),
            (16, 1.06, 21.22),
            (32, 0.63, 35.97),
        ];
        let inv = paper();
        for (n, time, speed) in expect {
            let s = ideal_speed(&inv, n);
            let t = ideal_time_minutes(&inv, n);
            assert!(
                (s - speed).abs() < 0.03,
                "ideal speed at {n}: got {s:.2}, paper {speed}"
            );
            assert!(
                (t - time).abs() < 0.03,
                "ideal time at {n}: got {t:.2}, paper {time}"
            );
        }
    }

    #[test]
    fn ideal_speed_inflects_at_8_and_27() {
        // Figure 20's two inflection points: the first class-C CPU (worker
        // 8) and the first class-E CPU (worker 27).
        let inv = paper();
        let inc = |n: usize| ideal_speed(&inv, n) - ideal_speed(&inv, n - 1);
        assert!(inc(8) < inc(7) - 0.5, "class B→C drop at worker 8");
        let d27 = inc(27);
        let d26 = inc(26);
        assert!(d27 < d26 - 0.15, "class D→E drop at worker 27");
    }

    #[test]
    fn static_makespan_increases_when_first_c_added() {
        // §5.2: "when the first CPU from class C is added to the
        // computation, the elapsed time actually increases".
        let inv = paper();
        let t7 = static_makespan_minutes(&inv, 7, PAPER_TASKS, PAPER_TASK_MINUTES);
        let t8 = static_makespan_minutes(&inv, 8, PAPER_TASKS, PAPER_TASK_MINUTES);
        assert!(
            t8 > t7,
            "static time must rise from 7 to 8 workers: {t7:.2} → {t8:.2}"
        );
    }

    #[test]
    fn static_matches_paper_shape() {
        // Paper Table 2, Static column (includes ~0.3-0.6 min overhead we
        // do not model analytically): the model must land below but near.
        let inv = paper();
        let expect = [
            (1, 12.15),
            (2, 6.93),
            (4, 3.55),
            (8, 3.03),
            (16, 1.63),
            (32, 1.00),
        ];
        for (n, paper_time) in expect {
            let t = static_makespan_minutes(&inv, n, PAPER_TASKS, PAPER_TASK_MINUTES);
            assert!(
                t <= paper_time + 0.01,
                "analytic static at {n} ({t:.2}) above paper ({paper_time})"
            );
            assert!(
                t > paper_time * 0.75,
                "analytic static at {n} ({t:.2}) far below paper ({paper_time})"
            );
        }
    }

    #[test]
    fn dynamic_beats_static_in_heterogeneous_pool() {
        let inv = paper();
        for n in [8usize, 16, 32] {
            let st = static_makespan_minutes(&inv, n, PAPER_TASKS, PAPER_TASK_MINUTES);
            let dy = dynamic_makespan_minutes(&inv, n, PAPER_TASKS, PAPER_TASK_MINUTES);
            assert!(
                dy < st,
                "dynamic ({dy:.2}) should beat static ({st:.2}) at {n} workers"
            );
        }
    }

    #[test]
    fn dynamic_approaches_ideal() {
        // Dynamic load balancing reaches within one task granule of ideal.
        let inv = paper();
        for n in [1usize, 2, 4, 8, 16, 32] {
            let dy = dynamic_makespan_minutes(&inv, n, PAPER_TASKS, PAPER_TASK_MINUTES);
            let ideal = ideal_time_minutes(&inv, n);
            assert!(dy >= ideal - 1e-9);
            assert!(
                dy < ideal + 2.0 * PAPER_TASK_MINUTES / 0.79,
                "dynamic at {n}: {dy:.3} vs ideal {ideal:.3}"
            );
        }
    }

    #[test]
    fn schemas_identical_in_homogeneous_pool() {
        let inv = Inventory::homogeneous(16);
        let st = static_makespan_minutes(&inv, 8, 256, 0.01);
        let dy = dynamic_makespan_minutes(&inv, 8, 256, 0.01);
        assert!((st - dy).abs() < 1e-9);
    }

    #[test]
    fn time_scale_roundtrip() {
        let scale = TimeScale {
            millis_per_minute: 250.0,
        };
        let d = scale.to_duration(2.0);
        assert_eq!(d, Duration::from_millis(500));
        assert!((scale.to_minutes(d) - 2.0).abs() < 1e-9);
        assert!((scale.task_cost_units(0.01) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn paper_machines_match_the_text() {
        let machines = paper_machines();
        assert_eq!(machines.len(), 25, "25 computers");
        let cpus: usize = machines.iter().map(|m| m.cpus).sum();
        assert_eq!(cpus, 34, "34 CPUs");
        // Machine counts per class as listed in §5.2.
        let count = |c: CpuClass| machines.iter().filter(|m| m.class == c).count();
        assert_eq!(count(CpuClass::A), 1);
        assert_eq!(count(CpuClass::B), 6);
        assert_eq!(count(CpuClass::C), 15);
        assert_eq!(count(CpuClass::D), 2);
        assert_eq!(count(CpuClass::E), 1);
    }

    #[test]
    fn inventory_from_machines_matches_paper_inventory() {
        let from_machines = Inventory::from_machines(&paper_machines());
        let paper = Inventory::paper();
        assert_eq!(from_machines.total_cpus(), paper.total_cpus());
        for n in [1usize, 8, 27, 34] {
            assert_eq!(from_machines.allocate(n), paper.allocate(n), "n={n}");
        }
    }
}
