//! # kpn-cluster — the paper's heterogeneous computing environment
//!
//! The evaluation of §5.2 ran on "25 computers with 34 CPUs" in five speed
//! classes (Table 1). We reproduce that environment *as a model*: each
//! worker is assigned a CPU class whose relative speed throttles its
//! synthetic tasks (see `kpn_parallel::SyntheticTask`), so one machine can
//! emulate the full cluster — the scheduling behaviour under static vs
//! dynamic load balancing depends only on relative speeds, task counts,
//! and batch sizes, all of which are preserved.
//!
//! This crate holds the pure model: CPU classes and their Table 1 numbers,
//! the machine inventory, the fastest-first allocation used by the paper's
//! ideal curves, the ideal time/speed calculator behind Table 2 and
//! Figures 19/20, and analytic makespan models (lock-step rounds for
//! MetaStatic, greedy list scheduling for MetaDynamic) used to sanity-check
//! the measured harness.

#![warn(missing_docs)]

pub mod model;

pub use model::{
    dynamic_makespan_minutes, ideal_speed, ideal_time_minutes, paper_machines,
    static_makespan_minutes, CpuClass, Inventory, Machine, TimeScale, BASELINE_MINUTES,
    PAPER_TASKS, PAPER_TASK_MINUTES,
};
