//! Partitioning topologies into deployable [`GraphSpec`] plans.
//!
//! A [`DistGraph`] can be cut into `parts` contiguous node blocks and
//! expressed through the distributed [`GraphBuilder`]: one `RoundSync`
//! process description per node, two directed channels per edge, cut
//! edges becoming remote endpoint tokens. The resulting per-partition
//! [`GraphSpec`]s serialize through `kpn-codec` (the `kpn-dist export`
//! CLI writes one file per partition) and are validated statically with
//! `kpn_lint::check_specs` — the same lint-gated admission path the
//! fabric roadmap item uses for deployments.

use crate::graph::DistGraph;
use crate::round::MIN_CAPACITY;
use kpn_core::{Error, Result};
use kpn_net::{ChanId, GraphBuilder, GraphSpec};

/// Process-type name used in exported specs. A server-side registry
/// entry for it is future work (running a partition needs an output
/// collection protocol); the plans are for static validation and
/// inspection today.
pub const PROCESS_TYPE: &str = "RoundSync";

/// Constructor parameters carried by each exported process description:
/// `(algorithm, node id, node input, max_rounds)`.
pub type NodeParams = (String, u64, u64, u64);

/// Expresses `graph` through the distributed [`GraphBuilder`]: node `v`
/// goes to partition `v·parts/n` (contiguous blocks), every edge becomes
/// two directed channels of `capacity` bytes (clamped to
/// [`MIN_CAPACITY`]), and every node becomes a [`PROCESS_TYPE`] process
/// with [`NodeParams`]. Port order is preserved, so a deployed plan
/// exchanges messages exactly like [`crate::round::build_network`].
pub fn to_builder(
    graph: &DistGraph,
    algo: &str,
    parts: usize,
    capacity: usize,
    inputs: &[u64],
    max_rounds: u64,
) -> Result<GraphBuilder> {
    let n = graph.n();
    if n == 0 || parts == 0 {
        return Err(Error::Graph(format!(
            "need nodes and partitions, got n={n} parts={parts}"
        )));
    }
    if parts > n {
        return Err(Error::Graph(format!(
            "{parts} partitions for {n} nodes leaves empty partitions"
        )));
    }
    if inputs.len() != n {
        return Err(Error::Graph(format!(
            "{} inputs for {n} nodes",
            inputs.len()
        )));
    }
    let adj = graph.adjacency();
    if let Some(v) = adj.iter().position(|ports| ports.is_empty()) {
        return Err(Error::Graph(format!(
            "node {v} is isolated: every node needs at least one edge"
        )));
    }
    let capacity = capacity.max(MIN_CAPACITY);

    let mut b = GraphBuilder::new();
    // writer_chan[v][p] carries v's messages out of port p;
    // reader_chan[v][p] carries the far side's messages into port p.
    let mut writer_chan: Vec<Vec<Option<ChanId>>> = adj
        .iter()
        .map(|ports| vec![None; ports.len()])
        .collect();
    let mut reader_chan = writer_chan.clone();
    let mut next_port = vec![0usize; n];
    for &(u, v) in graph.edges() {
        let pu = next_port[u];
        let pv = next_port[v];
        next_port[u] += 1;
        next_port[v] += 1;
        let uv = b.channel_with_capacity(capacity);
        let vu = b.channel_with_capacity(capacity);
        writer_chan[u][pu] = Some(uv);
        reader_chan[v][pv] = Some(uv);
        writer_chan[v][pv] = Some(vu);
        reader_chan[u][pu] = Some(vu);
    }
    for v in 0..n {
        let ins: Vec<ChanId> = reader_chan[v].iter().map(|c| c.unwrap()).collect();
        let outs: Vec<ChanId> = writer_chan[v].iter().map(|c| c.unwrap()).collect();
        let params: NodeParams = (algo.to_string(), v as u64, inputs[v], max_rounds);
        b.add(v * parts / n, PROCESS_TYPE, &params, &ins, &outs)?;
    }
    Ok(b)
}

/// Partitions `graph` into named `(partition-name, GraphSpec)` pairs —
/// the input shape `kpn_lint::check_specs` and the `kpn-dist export`
/// CLI consume. Partition `p` is named `part<p>` and addressed
/// `dist-part-<p>:0`.
pub fn partition_specs(
    graph: &DistGraph,
    algo: &str,
    parts: usize,
    capacity: usize,
    inputs: &[u64],
    max_rounds: u64,
) -> Result<Vec<(String, GraphSpec)>> {
    let b = to_builder(graph, algo, parts, capacity, inputs, max_rounds)?;
    let specs = b.specs(|p| format!("dist-part-{p}:0"))?;
    Ok(specs
        .into_iter()
        .map(|(p, spec)| (format!("part{p}"), spec))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{grid, ring};
    use kpn_net::{InputSpec, OutputSpec};

    #[test]
    fn partition_plans_pass_spec_lint() {
        for parts in [1, 2, 3] {
            let g = grid(4, 4).unwrap();
            let inputs = vec![0u64; g.n()];
            let specs = partition_specs(&g, "mvc3", parts, 16, &inputs, 64).unwrap();
            assert_eq!(specs.len(), parts);
            let diags = kpn_lint::check_specs(&specs);
            assert!(diags.is_empty(), "parts={parts}: {diags:?}");
            let nodes: usize = specs.iter().map(|(_, s)| s.processes.len()).sum();
            assert_eq!(nodes, g.n());
        }
    }

    #[test]
    fn cut_edges_become_matched_remote_tokens() {
        let g = ring(6).unwrap();
        let inputs = vec![0u64; 6];
        let specs = partition_specs(&g, "gossip_max", 2, 16, &inputs, 8).unwrap();
        let remote_outputs: usize = specs
            .iter()
            .flat_map(|(_, s)| &s.processes)
            .flat_map(|p| &p.outputs)
            .filter(|o| matches!(o, OutputSpec::Remote { .. }))
            .count();
        let remote_inputs: usize = specs
            .iter()
            .flat_map(|(_, s)| &s.processes)
            .flat_map(|p| &p.inputs)
            .filter(|i| matches!(i, InputSpec::Remote { .. }))
            .count();
        // The ring cut into two arcs has two cut edges = four directed
        // cut channels.
        assert_eq!(remote_outputs, 4);
        assert_eq!(remote_inputs, 4);
    }

    #[test]
    fn specs_round_trip_through_codec() {
        let g = ring(5).unwrap();
        let inputs: Vec<u64> = (0..5).collect();
        let specs = partition_specs(&g, "gossip_max", 2, 16, &inputs, 8).unwrap();
        for (name, spec) in &specs {
            let bytes = kpn_codec::to_bytes(spec).unwrap();
            let back: GraphSpec = kpn_codec::from_bytes(&bytes).unwrap();
            assert_eq!(back.processes.len(), spec.processes.len(), "{name}");
            assert_eq!(back.channels.len(), spec.channels.len(), "{name}");
            let params: NodeParams =
                kpn_codec::from_bytes(&back.processes[0].params).unwrap();
            assert_eq!(params.0, "gossip_max");
        }
    }
}
