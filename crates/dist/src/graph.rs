//! Undirected communication topologies for distributed algorithms.
//!
//! A [`DistGraph`] is a simple undirected graph over nodes `0..n`. Nodes
//! become KPN processes and each edge becomes a *pair* of byte channels
//! (one per direction), so the graph is the network topology in the
//! port-numbering model: node `v`'s ports are its incident edges in
//! insertion order, and every port knows the reverse port on the far side.
//!
//! Topologies come from the generators ([`ring`], [`path`], [`grid`],
//! [`random_regular`], [`random_bipartite_regular`]) or from Graphviz DOT
//! text ([`DistGraph::from_dot`] / [`DistGraph::to_dot`]): the supported
//! subset is `graph name { a -- b; c; }` with nonnegative-integer node
//! ids, which round-trips exactly (same name, node count, and edge
//! order).

use kpn_core::{Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::fmt::Write as _;

/// A simple undirected graph over nodes `0..n`, with insertion-ordered
/// edges (the edge order *is* the port numbering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistGraph {
    name: String,
    n: usize,
    edges: Vec<(usize, usize)>,
    seen: HashSet<(usize, usize)>,
}

impl DistGraph {
    /// An edgeless graph over `n` nodes.
    pub fn new(name: impl Into<String>, n: usize) -> Self {
        DistGraph {
            name: name.into(),
            n,
            edges: Vec::new(),
            seen: HashSet::new(),
        }
    }

    /// Graph name (used as the DOT graph id).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Edges in insertion order, exactly as added.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Adds the undirected edge `{u, v}`. Self-loops, duplicate edges
    /// (in either orientation) and out-of-range endpoints are rejected —
    /// the topology must stay a simple graph for port numbering to be
    /// well defined.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<()> {
        if u >= self.n || v >= self.n {
            return Err(Error::Graph(format!(
                "edge {u} -- {v} out of range for {} nodes",
                self.n
            )));
        }
        if u == v {
            return Err(Error::Graph(format!("self-loop {u} -- {v} rejected")));
        }
        let key = (u.min(v), u.max(v));
        if !self.seen.insert(key) {
            return Err(Error::Graph(format!("duplicate edge {u} -- {v}")));
        }
        self.edges.push((u, v));
        Ok(())
    }

    /// True when `{u, v}` is an edge (either orientation).
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.seen.contains(&(u.min(v), u.max(v)))
    }

    /// Per-node adjacency in port order: `adj[v][p]` is
    /// `(neighbor, reverse_port)` — the node on the far end of `v`'s port
    /// `p`, and the port on *that* node which leads back to `v`.
    pub fn adjacency(&self) -> Vec<Vec<(usize, usize)>> {
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.n];
        for &(u, v) in &self.edges {
            let pu = adj[u].len();
            let pv = adj[v].len();
            adj[u].push((v, pv));
            adj[v].push((u, pu));
        }
        adj
    }

    /// Degree of node `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.edges
            .iter()
            .filter(|&&(a, b)| a == v || b == v)
            .count()
    }

    /// Maximum degree Δ over all nodes (0 for an edgeless graph).
    pub fn max_degree(&self) -> usize {
        let mut deg = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            deg[u] += 1;
            deg[v] += 1;
        }
        deg.into_iter().max().unwrap_or(0)
    }

    /// 2-colors the graph by BFS: `Ok(colors)` with `colors[v] ∈ {0, 1}`
    /// (component roots are colored 0), or `Err` naming an odd cycle edge
    /// when the graph is not bipartite.
    pub fn bipartition(&self) -> Result<Vec<u64>> {
        let adj = self.adjacency();
        let mut color = vec![u64::MAX; self.n];
        let mut queue = std::collections::VecDeque::new();
        for root in 0..self.n {
            if color[root] != u64::MAX {
                continue;
            }
            color[root] = 0;
            queue.push_back(root);
            while let Some(v) = queue.pop_front() {
                for &(u, _) in &adj[v] {
                    if color[u] == u64::MAX {
                        color[u] = 1 - color[v];
                        queue.push_back(u);
                    } else if color[u] == color[v] {
                        return Err(Error::Graph(format!(
                            "graph {} is not bipartite: edge {v} -- {u} closes an odd cycle",
                            self.name
                        )));
                    }
                }
            }
        }
        Ok(color)
    }

    /// Serializes to Graphviz DOT. Isolated nodes are emitted as bare
    /// node statements so the node count survives the round trip;
    /// [`DistGraph::from_dot`] of the result reproduces this graph
    /// exactly (name, `n`, edge order).
    pub fn to_dot(&self) -> String {
        let mut deg = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            deg[u] += 1;
            deg[v] += 1;
        }
        let id_ok = !self.name.is_empty()
            && !self.name.chars().next().unwrap().is_ascii_digit()
            && self
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_');
        let mut out = String::new();
        if id_ok {
            let _ = writeln!(out, "graph {} {{", self.name);
        } else {
            let _ = writeln!(out, "graph \"{}\" {{", self.name.replace('"', "\\\""));
        }
        for (v, &d) in deg.iter().enumerate() {
            if d == 0 {
                let _ = writeln!(out, "  {v};");
            }
        }
        for &(u, v) in &self.edges {
            let _ = writeln!(out, "  {u} -- {v};");
        }
        out.push_str("}\n");
        out
    }

    /// Parses the DOT subset written by [`DistGraph::to_dot`]:
    /// `graph name { ... }` bodies of `a -- b;` edge statements (chains
    /// `a -- b -- c;` expand to consecutive edges) and bare `a;` node
    /// statements, node ids being nonnegative integers. `digraph` is
    /// rejected — topologies are undirected; direction is synthesized
    /// per edge when the network is built.
    pub fn from_dot(text: &str) -> Result<DistGraph> {
        let tokens = dot_tokens(text)?;
        let mut it = tokens.into_iter().peekable();
        match it.next() {
            Some(DotToken::Id(kw)) if kw == "graph" => {}
            Some(DotToken::Id(kw)) if kw == "digraph" => {
                return Err(Error::Graph(
                    "digraph rejected: topologies are undirected (use `graph`)".into(),
                ))
            }
            other => {
                return Err(Error::Graph(format!(
                    "expected `graph`, found {other:?}"
                )))
            }
        }
        let name = match it.peek() {
            Some(DotToken::Id(_)) => match it.next() {
                Some(DotToken::Id(s)) => s,
                _ => unreachable!(),
            },
            _ => String::new(),
        };
        match it.next() {
            Some(DotToken::OpenBrace) => {}
            other => return Err(Error::Graph(format!("expected `{{`, found {other:?}"))),
        }
        let mut max_node: Option<usize> = None;
        let mut edges: Vec<(usize, usize)> = Vec::new();
        loop {
            match it.next() {
                Some(DotToken::CloseBrace) => break,
                Some(DotToken::Semicolon) => continue,
                Some(DotToken::Id(id)) => {
                    let mut prev = parse_node(&id)?;
                    max_node = Some(max_node.map_or(prev, |m| m.max(prev)));
                    while let Some(DotToken::Edge) = it.peek() {
                        it.next();
                        let next = match it.next() {
                            Some(DotToken::Id(id)) => parse_node(&id)?,
                            other => {
                                return Err(Error::Graph(format!(
                                    "expected node id after `--`, found {other:?}"
                                )))
                            }
                        };
                        max_node = Some(max_node.map_or(next, |m| m.max(next)));
                        edges.push((prev, next));
                        prev = next;
                    }
                }
                other => {
                    return Err(Error::Graph(format!(
                        "unexpected token in graph body: {other:?}"
                    )))
                }
            }
        }
        if it.next().is_some() {
            return Err(Error::Graph("trailing tokens after closing `}`".into()));
        }
        let n = max_node.map_or(0, |m| m + 1);
        let mut g = DistGraph::new(name, n);
        for (u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }
}

#[derive(Debug, PartialEq)]
enum DotToken {
    Id(String),
    Edge,
    OpenBrace,
    CloseBrace,
    Semicolon,
}

fn dot_tokens(text: &str) -> Result<Vec<DotToken>> {
    let mut out = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '{' => {
                chars.next();
                out.push(DotToken::OpenBrace);
            }
            '}' => {
                chars.next();
                out.push(DotToken::CloseBrace);
            }
            ';' => {
                chars.next();
                out.push(DotToken::Semicolon);
            }
            '-' => {
                chars.next();
                match chars.next() {
                    Some('-') => out.push(DotToken::Edge),
                    other => {
                        return Err(Error::Graph(format!(
                            "expected `--`, found `-{}`",
                            other.map(String::from).unwrap_or_default()
                        )))
                    }
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => {
                            if let Some(e) = chars.next() {
                                s.push(e);
                            }
                        }
                        Some(c) => s.push(c),
                        None => return Err(Error::Graph("unterminated string".into())),
                    }
                }
                out.push(DotToken::Id(s));
            }
            '/' => {
                // `//` line comment.
                chars.next();
                match chars.next() {
                    Some('/') => {
                        for c in chars.by_ref() {
                            if c == '\n' {
                                break;
                            }
                        }
                    }
                    other => {
                        return Err(Error::Graph(format!(
                            "unexpected `/{}`",
                            other.map(String::from).unwrap_or_default()
                        )))
                    }
                }
            }
            c if c.is_ascii_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(DotToken::Id(s));
            }
            other => return Err(Error::Graph(format!("unexpected character `{other}`"))),
        }
    }
    Ok(out)
}

fn parse_node(id: &str) -> Result<usize> {
    id.parse::<usize>()
        .map_err(|_| Error::Graph(format!("node id `{id}` is not a nonnegative integer")))
}

/// A cycle `0 — 1 — … — n-1 — 0`. Needs `n ≥ 3` (a 2-ring would be a
/// duplicate edge).
pub fn ring(n: usize) -> Result<DistGraph> {
    if n < 3 {
        return Err(Error::Graph(format!("ring needs n >= 3, got {n}")));
    }
    let mut g = DistGraph::new(format!("ring{n}"), n);
    for v in 0..n {
        g.add_edge(v, (v + 1) % n)?;
    }
    Ok(g)
}

/// A path `0 — 1 — … — n-1`. Needs `n ≥ 2`.
pub fn path(n: usize) -> Result<DistGraph> {
    if n < 2 {
        return Err(Error::Graph(format!("path needs n >= 2, got {n}")));
    }
    let mut g = DistGraph::new(format!("path{n}"), n);
    for v in 0..n - 1 {
        g.add_edge(v, v + 1)?;
    }
    Ok(g)
}

/// A `w × h` king-less grid (4-neighborhood): node `r·w + c` connects
/// right and down. Needs at least two nodes so none is isolated.
pub fn grid(w: usize, h: usize) -> Result<DistGraph> {
    if w * h < 2 {
        return Err(Error::Graph(format!("grid needs w*h >= 2, got {w}x{h}")));
    }
    let mut g = DistGraph::new(format!("grid{w}x{h}"), w * h);
    for r in 0..h {
        for c in 0..w {
            let v = r * w + c;
            if c + 1 < w {
                g.add_edge(v, v + 1)?;
            }
            if r + 1 < h {
                g.add_edge(v, v + w)?;
            }
        }
    }
    Ok(g)
}

/// How many whole-graph retries the rejection-sampling generators make
/// before giving up. The pairing model keeps a constant acceptance
/// probability for fixed small `d`, so this bound is generous.
const GEN_ATTEMPTS: usize = 1000;

/// A uniform-ish random `d`-regular simple graph on `n` nodes via the
/// pairing model with rejection: `d·n` stubs are shuffled and paired;
/// pairings with self-loops or duplicate edges are redrawn whole.
/// Practical for small `d` (acceptance ≈ `e^{-(d²-1)/4}`); errs after
/// a fixed number of redraws. Needs `n·d` even and `d < n`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<DistGraph> {
    if d == 0 || d >= n {
        return Err(Error::Graph(format!(
            "random_regular needs 0 < d < n, got d={d} n={n}"
        )));
    }
    if !(n * d).is_multiple_of(2) {
        return Err(Error::Graph(format!(
            "random_regular needs n*d even, got n={n} d={d}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    'attempt: for _ in 0..GEN_ATTEMPTS {
        shuffle(&mut stubs, &mut rng);
        let mut g = DistGraph::new(format!("regular{n}d{d}"), n);
        for pair in stubs.chunks_exact(2) {
            if g.add_edge(pair[0], pair[1]).is_err() {
                continue 'attempt;
            }
        }
        return Ok(g);
    }
    Err(Error::Graph(format!(
        "random_regular(n={n}, d={d}): no simple pairing after {GEN_ATTEMPTS} redraws \
         (d too large for rejection sampling)"
    )))
}

/// A random bipartite `d`-regular simple graph: sides `0..n/2` and
/// `n/2..n`, built as the union of `d` random perfect matchings between
/// the sides (redrawn whole when two matchings collide on an edge).
/// Needs `n` even and `1 ≤ d ≤ n/2`. Always bipartite, so it is the
/// random input family for bipartite maximal matching.
pub fn random_bipartite_regular(n: usize, d: usize, seed: u64) -> Result<DistGraph> {
    if n < 2 || !n.is_multiple_of(2) {
        return Err(Error::Graph(format!(
            "random_bipartite_regular needs even n >= 2, got {n}"
        )));
    }
    let half = n / 2;
    if d == 0 || d > half {
        return Err(Error::Graph(format!(
            "random_bipartite_regular needs 0 < d <= n/2, got d={d} n={n}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<usize> = (0..half).collect();
    'attempt: for _ in 0..GEN_ATTEMPTS {
        let mut g = DistGraph::new(format!("bipartite{n}d{d}"), n);
        for _ in 0..d {
            shuffle(&mut perm, &mut rng);
            for (i, &p) in perm.iter().enumerate() {
                if g.add_edge(i, half + p).is_err() {
                    continue 'attempt;
                }
            }
        }
        return Ok(g);
    }
    Err(Error::Graph(format!(
        "random_bipartite_regular(n={n}, d={d}): matchings kept colliding after \
         {GEN_ATTEMPTS} redraws"
    )))
}

/// Seeded Fisher–Yates over the vendored `rand` subset.
fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.random_below((i + 1) as u64) as usize;
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacency_ports_are_mutual() {
        let g = ring(5).unwrap();
        let adj = g.adjacency();
        for (v, ports) in adj.iter().enumerate() {
            for (p, &(u, back)) in ports.iter().enumerate() {
                assert_eq!(adj[u][back], (v, p), "port {p} of {v} not mutual");
            }
        }
    }

    #[test]
    fn generators_have_expected_shape() {
        let g = grid(4, 3).unwrap();
        assert_eq!(g.n(), 12);
        assert_eq!(g.edges().len(), 3 * 3 + 4 * 2); // horizontal + vertical
        assert_eq!(g.max_degree(), 4);

        let r = random_regular(20, 3, 7).unwrap();
        assert_eq!(r.n(), 20);
        assert_eq!(r.edges().len(), 30);
        for v in 0..20 {
            assert_eq!(r.degree(v), 3);
        }

        let b = random_bipartite_regular(20, 3, 7).unwrap();
        for v in 0..20 {
            assert_eq!(b.degree(v), 3);
        }
        let colors = b.bipartition().unwrap();
        for &(u, v) in b.edges() {
            assert_ne!(colors[u], colors[v]);
        }
    }

    #[test]
    fn seeded_generators_are_reproducible() {
        assert_eq!(
            random_regular(30, 3, 42).unwrap(),
            random_regular(30, 3, 42).unwrap()
        );
        assert_ne!(
            random_regular(30, 3, 42).unwrap().edges(),
            random_regular(30, 3, 43).unwrap().edges()
        );
    }

    #[test]
    fn odd_cycle_is_not_bipartite() {
        let g = ring(5).unwrap();
        assert!(g.bipartition().is_err());
        let g = ring(6).unwrap();
        assert!(g.bipartition().is_ok());
    }

    #[test]
    fn simple_graph_invariants_enforced() {
        let mut g = DistGraph::new("g", 3);
        g.add_edge(0, 1).unwrap();
        assert!(g.add_edge(1, 1).is_err(), "self-loop");
        assert!(g.add_edge(1, 0).is_err(), "reverse duplicate");
        assert!(g.add_edge(0, 3).is_err(), "out of range");
    }

    #[test]
    fn dot_round_trips_exactly() {
        for g in [
            ring(6).unwrap(),
            path(2).unwrap(),
            grid(3, 3).unwrap(),
            random_regular(12, 3, 9).unwrap(),
        ] {
            let dot = g.to_dot();
            let back = DistGraph::from_dot(&dot).unwrap();
            assert_eq!(back, g, "round trip changed the graph:\n{dot}");
        }
    }

    #[test]
    fn dot_isolated_nodes_survive() {
        let mut g = DistGraph::new("iso", 4);
        g.add_edge(0, 2).unwrap();
        // Nodes 1 and 3 are isolated; they must appear as bare statements.
        let dot = g.to_dot();
        assert!(dot.contains("1;") && dot.contains("3;"), "{dot}");
        assert_eq!(DistGraph::from_dot(&dot).unwrap(), g);
    }

    #[test]
    fn dot_rejects_digraph_and_garbage() {
        assert!(DistGraph::from_dot("digraph g { 0 -> 1; }").is_err());
        assert!(DistGraph::from_dot("graph g { 0 -- x; }").is_err());
        assert!(DistGraph::from_dot("graph g { 0 -- 0; }").is_err());
        assert!(DistGraph::from_dot("graph g { 0 -- 1 }").is_ok(), "no semicolon ok");
    }

    #[test]
    fn dot_chain_expands_to_edges() {
        let g = DistGraph::from_dot("graph g { 0 -- 1 -- 2; }").unwrap();
        assert_eq!(g.edges(), &[(0, 1), (1, 2)]);
    }
}
