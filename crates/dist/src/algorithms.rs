//! Reference distributed algorithms in the port-numbering model, after
//! the classical PN/LOCAL presentations (Suomela, *Distributed
//! Algorithms*): bipartite maximal matching, minimum-vertex-cover
//! 3-approximation via the bipartite double cover, and a never-halting
//! gossip used to exercise the communication-round limit.
//!
//! Message alphabet (fits in the low byte of a `u64`, so the double
//! cover can pack two messages per edge per round):
//! `IDLE = 0`, `PROPOSAL = 1`, `MATCHED = 2`, `ACCEPT = 3`.

use crate::graph::DistGraph;
use crate::round::{NodeAlgorithm, NodeInfo};
use kpn_core::{Error, Result};

/// No-op message from a node that has logically stopped or has nothing
/// to say this round.
pub const IDLE: u64 = 0;
/// White → black: "will you match with me?"
pub const PROPOSAL: u64 = 1;
/// White → all ports: "I am matched; stop waiting for me."
pub const MATCHED: u64 = 2;
/// Black → white: "proposal accepted; we are matched."
pub const ACCEPT: u64 = 3;

/// One side of the bipartite-maximal-matching state machine — reused
/// verbatim by [`Bmm`] (one instance per node) and [`Mvc3`] (two
/// instances per node, one per double-cover copy).
///
/// Odd round `2k−1`: an unmatched white node proposes on port `k−1`
/// (ports in increasing order, one per odd round); a matched white node
/// announces `MATCHED` on every port and stops. Even round `2k`: an
/// unmatched black node accepts the minimum-port proposal received in
/// the previous round and stops; a black node whose every port has
/// announced `MATCHED` stops unmatched. All outputs are final after
/// `2Δ + 2` rounds.
#[derive(Debug, Clone)]
struct BmmCore {
    /// 0 = white (proposer), anything else = black (acceptor).
    color: u64,
    degree: usize,
    /// Port this node is matched through.
    matched: Option<usize>,
    /// White: `MATCHED` announcement already sent (terminal).
    announced: bool,
    /// Black: ports whose white endpoint announced `MATCHED`.
    in_m: Vec<bool>,
    /// Black: ports with an unanswered `PROPOSAL` from the last odd round.
    pending: Vec<bool>,
    /// No further sends or state changes.
    stopped: bool,
}

impl BmmCore {
    fn new(color: u64, degree: usize) -> Self {
        BmmCore {
            color,
            degree,
            matched: None,
            announced: false,
            in_m: vec![false; degree],
            pending: vec![false; degree],
            stopped: false,
        }
    }

    fn is_white(&self) -> bool {
        self.color == 0
    }

    fn send(&mut self, round: u64, outbox: &mut [u64]) {
        outbox.fill(IDLE);
        if self.stopped {
            return;
        }
        if self.is_white() {
            if round % 2 == 1 {
                if self.matched.is_some() {
                    outbox.fill(MATCHED);
                    self.announced = true;
                    self.stopped = true;
                } else {
                    let k = round.div_ceil(2) as usize;
                    if k <= self.degree {
                        outbox[k - 1] = PROPOSAL;
                    } else {
                        // Every proposal was ignored: terminally unmatched.
                        self.stopped = true;
                    }
                }
            }
        } else if round.is_multiple_of(2) {
            if let Some(port) = self.pending.iter().position(|&p| p) {
                outbox[port] = ACCEPT;
                self.matched = Some(port);
                self.stopped = true;
            } else if self.in_m.iter().all(|&m| m) {
                // Every white neighbor is matched elsewhere.
                self.stopped = true;
            }
        }
    }

    fn receive(&mut self, round: u64, inbox: &[u64]) {
        if self.stopped {
            return;
        }
        if self.is_white() {
            if round.is_multiple_of(2) && self.matched.is_none() {
                if let Some(port) = inbox.iter().position(|&m| m == ACCEPT) {
                    self.matched = Some(port);
                }
            }
        } else if round % 2 == 1 {
            for (port, &msg) in inbox.iter().enumerate() {
                match msg {
                    PROPOSAL => self.pending[port] = true,
                    MATCHED => self.in_m[port] = true,
                    _ => {}
                }
            }
        }
    }

    /// Matched port + 1, or 0 when unmatched.
    fn output(&self) -> u64 {
        self.matched.map_or(0, |p| p as u64 + 1)
    }
}

/// Bipartite maximal matching (PN model). Input: the node's color from a
/// proper 2-coloring ([`DistGraph::bipartition`]) — 0 white, 1 black.
/// Output: matched port + 1, or 0 when unmatched. The matching is
/// consistent (both endpoints agree) and maximal (no edge joins two
/// unmatched nodes); validate with [`check_matching`].
pub struct Bmm {
    core: BmmCore,
}

impl NodeAlgorithm for Bmm {
    const NAME: &'static str = "bmm";

    fn new(info: NodeInfo) -> Self {
        Bmm {
            core: BmmCore::new(info.input, info.degree),
        }
    }

    fn round_bound(max_degree: usize) -> Option<u64> {
        Some(2 * max_degree as u64 + 2)
    }

    fn send(&mut self, round: u64, outbox: &mut [u64]) {
        self.core.send(round, outbox);
    }

    fn receive(&mut self, round: u64, inbox: &[u64]) {
        self.core.receive(round, inbox);
    }

    fn output(&self) -> u64 {
        self.core.output()
    }
}

/// Minimum-vertex-cover 3-approximation (LOCAL model, no identifiers
/// needed): run [`Bmm`] on the bipartite double cover — every node
/// simulates a white copy and a black copy, every physical edge carries
/// both copies' messages as a packed pair — and join the cover iff
/// either copy is matched. Input is unused; output is 1 (in cover) or 0.
/// Validate with [`check_cover`].
pub struct Mvc3 {
    white: BmmCore,
    black: BmmCore,
    scratch: Vec<u64>,
}

impl NodeAlgorithm for Mvc3 {
    const NAME: &'static str = "mvc3";

    fn new(info: NodeInfo) -> Self {
        Mvc3 {
            white: BmmCore::new(0, info.degree),
            black: BmmCore::new(1, info.degree),
            scratch: vec![0; info.degree],
        }
    }

    fn round_bound(max_degree: usize) -> Option<u64> {
        Some(2 * max_degree as u64 + 2)
    }

    fn send(&mut self, round: u64, outbox: &mut [u64]) {
        // High byte: this node's white copy → neighbor's black copy.
        // Low byte: this node's black copy → neighbor's white copy.
        self.white.send(round, outbox);
        self.black.send(round, &mut self.scratch);
        for (out, &black_msg) in outbox.iter_mut().zip(&self.scratch) {
            *out = (*out << 8) | black_msg;
        }
    }

    fn receive(&mut self, round: u64, inbox: &[u64]) {
        // The neighbor's black copy wrote the low byte, addressed to our
        // white copy, and vice versa.
        for (slot, &packed) in self.scratch.iter_mut().zip(inbox) {
            *slot = packed & 0xFF;
        }
        self.white.receive(round, &self.scratch);
        for (slot, &packed) in self.scratch.iter_mut().zip(inbox) {
            *slot = packed >> 8;
        }
        self.black.receive(round, &self.scratch);
    }

    fn output(&self) -> u64 {
        u64::from(self.white.matched.is_some() || self.black.matched.is_some())
    }
}

/// Never-halting max-gossip: every round, send the largest value seen so
/// far on every port and fold in the neighbors'. After `R` rounds the
/// output is the maximum input over the `R`-hop neighborhood, so the
/// communication-round limit is directly observable in the outputs.
/// `round_bound` is `None` — only the limit stops it.
pub struct GossipMax {
    best: u64,
}

impl NodeAlgorithm for GossipMax {
    const NAME: &'static str = "gossip_max";

    fn new(info: NodeInfo) -> Self {
        GossipMax { best: info.input }
    }

    fn round_bound(_max_degree: usize) -> Option<u64> {
        None
    }

    fn send(&mut self, _round: u64, outbox: &mut [u64]) {
        outbox.fill(self.best);
    }

    fn receive(&mut self, _round: u64, inbox: &[u64]) {
        for &v in inbox {
            self.best = self.best.max(v);
        }
    }

    fn output(&self) -> u64 {
        self.best
    }
}

/// Validates a [`Bmm`] output vector: ports in range, both endpoints of
/// every matched edge agree, and the matching is maximal. Returns the
/// number of matched edges.
pub fn check_matching(graph: &DistGraph, outputs: &[u64]) -> Result<usize> {
    let adj = graph.adjacency();
    if outputs.len() != graph.n() {
        return Err(Error::Graph(format!(
            "{} outputs for {} nodes",
            outputs.len(),
            graph.n()
        )));
    }
    let mut matched_edges = 0usize;
    for (v, &out) in outputs.iter().enumerate() {
        if out == 0 {
            continue;
        }
        let port = out as usize - 1;
        let Some(&(u, back)) = adj[v].get(port) else {
            return Err(Error::Graph(format!(
                "node {v} reports matched port {port} but has degree {}",
                adj[v].len()
            )));
        };
        if outputs[u] != back as u64 + 1 {
            return Err(Error::Graph(format!(
                "node {v} claims a match through port {port} to node {u}, \
                 which reports {} instead of port {back}",
                outputs[u]
            )));
        }
        matched_edges += 1;
    }
    debug_assert_eq!(matched_edges % 2, 0);
    for &(u, v) in graph.edges() {
        if outputs[u] == 0 && outputs[v] == 0 {
            return Err(Error::Graph(format!(
                "matching is not maximal: edge {u} -- {v} joins two unmatched nodes"
            )));
        }
    }
    Ok(matched_edges / 2)
}

/// Validates an [`Mvc3`] output vector: outputs are 0/1 and every edge
/// has a covered endpoint. Returns the cover size (the 3·OPT bound is
/// checked against brute force in tests, where OPT is computable).
pub fn check_cover(graph: &DistGraph, outputs: &[u64]) -> Result<usize> {
    if outputs.len() != graph.n() {
        return Err(Error::Graph(format!(
            "{} outputs for {} nodes",
            outputs.len(),
            graph.n()
        )));
    }
    if let Some(v) = outputs.iter().position(|&o| o > 1) {
        return Err(Error::Graph(format!(
            "node {v} output {} is not a cover bit",
            outputs[v]
        )));
    }
    for &(u, v) in graph.edges() {
        if outputs[u] == 0 && outputs[v] == 0 {
            return Err(Error::Graph(format!(
                "edge {u} -- {v} is uncovered"
            )));
        }
    }
    Ok(outputs.iter().filter(|&&o| o == 1).count())
}

/// Exact minimum-vertex-cover size by exhaustive search — for asserting
/// the 3-approximation bound on small graphs only (`n ≤ 24`).
pub fn min_vertex_cover_size(graph: &DistGraph) -> usize {
    let n = graph.n();
    assert!(n <= 24, "brute force is for small graphs");
    let edges = graph.edges();
    let mut best = n;
    for mask in 0u32..(1 << n) {
        let size = mask.count_ones() as usize;
        if size >= best {
            continue;
        }
        if edges
            .iter()
            .all(|&(u, v)| mask & (1 << u) != 0 || mask & (1 << v) != 0)
        {
            best = size;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{grid, path, random_bipartite_regular, random_regular};
    use crate::round::{effective_rounds, simulate};

    fn run_ref<A: NodeAlgorithm>(graph: &DistGraph, inputs: &[u64]) -> Vec<u64> {
        let rounds = effective_rounds::<A>(graph, u64::MAX);
        simulate::<A>(graph, inputs, rounds).unwrap()
    }

    #[test]
    fn bmm_single_edge_matches() {
        let g = path(2).unwrap();
        let out = run_ref::<Bmm>(&g, &[0, 1]);
        assert_eq!(out, vec![1, 1]);
        assert_eq!(check_matching(&g, &out).unwrap(), 1);
    }

    #[test]
    fn bmm_is_maximal_and_consistent_on_many_graphs() {
        for seed in 0..10 {
            let g = random_bipartite_regular(40, 3, seed).unwrap();
            let colors = g.bipartition().unwrap();
            let out = run_ref::<Bmm>(&g, &colors);
            let size = check_matching(&g, &out).unwrap();
            assert!(size > 0, "3-regular bipartite graphs have edges to match");
        }
        let g = grid(7, 5).unwrap();
        let colors = g.bipartition().unwrap();
        let out = run_ref::<Bmm>(&g, &colors);
        check_matching(&g, &out).unwrap();
    }

    #[test]
    fn mvc3_covers_and_is_within_3x_of_optimum() {
        for g in [
            grid(4, 3).unwrap(),
            crate::graph::ring(9).unwrap(),
            random_regular(16, 3, 5).unwrap(),
        ] {
            let inputs = vec![0u64; g.n()];
            let out = run_ref::<Mvc3>(&g, &inputs);
            let size = check_cover(&g, &out).unwrap();
            let opt = min_vertex_cover_size(&g);
            assert!(
                size <= 3 * opt,
                "{}: cover {size} exceeds 3x optimum {opt}",
                g.name()
            );
        }
    }

    #[test]
    fn gossip_max_respects_hop_limit() {
        // On a path, node 0 holds the max; after R rounds it has reached
        // exactly the R-hop prefix.
        let g = path(10).unwrap();
        let mut inputs: Vec<u64> = vec![1; 10];
        inputs[0] = 99;
        let out = simulate::<GossipMax>(&g, &inputs, 3).unwrap();
        for (v, &o) in out.iter().enumerate() {
            assert_eq!(o, if v <= 3 { 99 } else { 1 }, "node {v}");
        }
    }

    #[test]
    fn validators_reject_bad_outputs() {
        let g = path(3).unwrap();
        // Node 1 claims port 1 (toward node 2) but node 2 claims nothing.
        assert!(check_matching(&g, &[0, 2, 0]).is_err());
        // Edge 0 -- 1 joins two unmatched nodes under an empty matching.
        assert!(check_matching(&g, &[0, 0, 0]).is_err());
        // Middle node alone covers a path of 3.
        assert_eq!(check_cover(&g, &[0, 1, 0]).unwrap(), 1);
        assert!(check_cover(&g, &[1, 0, 0]).is_err());
    }
}
