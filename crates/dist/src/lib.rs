//! Distributed-algorithm workloads on Kahn process networks.
//!
//! The paper's evaluation stops at pipelines; this crate opens the
//! workload family the ROADMAP calls for: PN/LOCAL-model distributed
//! algorithms where every graph node is a KPN process and every edge a
//! pair of byte channels, executed under synchronous-round semantics.
//!
//! * [`graph`] — undirected topologies: generators (rings, paths,
//!   grids, random d-regular, random bipartite d-regular) and Graphviz
//!   DOT import/export with exact round-tripping.
//! * [`round`] — the [`round::RoundSync`] adapter running a
//!   [`round::NodeAlgorithm`] on all three executors,
//!   bounded by a communication-round limit, plus the lockstep
//!   [`round::simulate`] reference oracle.
//! * [`algorithms`] — bipartite maximal matching (PN model),
//!   minimum-vertex-cover 3-approximation via the bipartite double
//!   cover (LOCAL model), never-halting max-gossip, and output
//!   validators.
//! * [`spec`] — partitioning a topology into deployable
//!   [`GraphSpec`](kpn_net::GraphSpec) plans through the distributed
//!   `GraphBuilder`, validated by `kpn_lint::check_specs`.
//!
//! The `kpn-dist` binary wraps it all as a CLI (`gen`, `run`,
//! `export`); `tests/dist_algorithms.rs` pins per-node output equality
//! across executors and seeded sim schedules.

#![warn(missing_docs)]

pub mod algorithms;
pub mod graph;
pub mod round;
pub mod spec;

pub use algorithms::{check_cover, check_matching, Bmm, GossipMax, Mvc3};
pub use graph::{
    grid, path, random_bipartite_regular, random_regular, ring, DistGraph,
};
pub use round::{
    build_network, effective_rounds, run, simulate, DistConfig, NodeAlgorithm, NodeInfo,
    RoundSync, DEFAULT_MAX_ROUNDS, MIN_CAPACITY,
};
