//! Topology and distributed-algorithm workbench.
//!
//! ```text
//! kpn-dist gen --shape ring|path|grid|regular|bipartite [--n N] [--w W --h H]
//!              [--d D] [--seed S] [-o FILE.dot]
//! kpn-dist run --algo bmm|mvc3|gossip --dot FILE.dot [--rounds N]
//!              [--mode thread|pooled:W|sim:SEED] [--print-outputs]
//! kpn-dist export --dot FILE.dot --algo NAME --parts P [--rounds N] [-o PREFIX]
//! ```
//!
//! `gen` writes a topology as Graphviz DOT (stdout without `-o`). `run`
//! imports a DOT topology, executes the algorithm round-synchronously
//! under the chosen executor with lint at `Deny`, verifies the outputs
//! against the lockstep reference simulation and the algorithm's
//! validator, and prints a summary. `export` cuts the topology into `P`
//! partition plans, validates them with `kpn-lint`'s spec checker, and
//! writes one `kpn-codec`-encoded `GraphSpec` file per partition.

use kpn_core::{Error, ExecMode, Result, SchedulePolicy, SimScheduler};
use kpn_dist::algorithms::{check_cover, check_matching, Bmm, GossipMax, Mvc3};
use kpn_dist::graph::{self, DistGraph};
use kpn_dist::round::{effective_rounds, run, simulate, DistConfig, NodeAlgorithm};
use kpn_dist::spec::partition_specs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprintln!("{USAGE}");
            return;
        }
        Some(other) => Err(Error::Graph(format!("unknown command `{other}`"))),
    };
    if let Err(e) = result {
        eprintln!("kpn-dist: {e}");
        std::process::exit(1);
    }
}

const USAGE: &str = "usage:
  kpn-dist gen --shape ring|path|grid|regular|bipartite [--n N] [--w W --h H] [--d D] [--seed S] [-o FILE.dot]
  kpn-dist run --algo bmm|mvc3|gossip --dot FILE.dot [--rounds N] [--mode thread|pooled:W|sim:SEED] [--print-outputs]
  kpn-dist export --dot FILE.dot --algo NAME --parts P [--rounds N] [-o PREFIX]";

/// Tiny flag parser: `--key value` pairs plus bare flags.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn get(&self, key: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn has(&self, key: &str) -> bool {
        self.args.iter().any(|a| a == key)
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| Error::Graph(format!("{key}: cannot parse `{v}`"))),
        }
    }

    fn required(&self, key: &str) -> Result<&'a str> {
        self.get(key)
            .ok_or_else(|| Error::Graph(format!("missing required flag {key}\n{USAGE}")))
    }
}

fn cmd_gen(args: &[String]) -> Result<()> {
    let f = Flags { args };
    let seed: u64 = f.num("--seed", 1)?;
    let g = match f.required("--shape")? {
        "ring" => graph::ring(f.num("--n", 8usize)?)?,
        "path" => graph::path(f.num("--n", 8usize)?)?,
        "grid" => graph::grid(f.num("--w", 4usize)?, f.num("--h", 4usize)?)?,
        "regular" => graph::random_regular(f.num("--n", 16usize)?, f.num("--d", 3usize)?, seed)?,
        "bipartite" => graph::random_bipartite_regular(
            f.num("--n", 16usize)?,
            f.num("--d", 3usize)?,
            seed,
        )?,
        other => return Err(Error::Graph(format!("unknown shape `{other}`"))),
    };
    let dot = g.to_dot();
    match f.get("-o") {
        Some(path) => {
            std::fs::write(path, &dot).map_err(Error::Io)?;
            eprintln!(
                "wrote {path}: {} ({} nodes, {} edges)",
                g.name(),
                g.n(),
                g.edges().len()
            );
        }
        None => print!("{dot}"),
    }
    Ok(())
}

fn parse_mode(spec: &str) -> Result<ExecMode> {
    if spec == "thread" {
        return Ok(ExecMode::Thread);
    }
    if let Some(w) = spec.strip_prefix("pooled:") {
        let workers = w
            .parse()
            .map_err(|_| Error::Graph(format!("--mode: bad worker count `{w}`")))?;
        return Ok(ExecMode::Pooled { workers });
    }
    if let Some(s) = spec.strip_prefix("sim:") {
        let seed = s
            .parse()
            .map_err(|_| Error::Graph(format!("--mode: bad sim seed `{s}`")))?;
        return Ok(ExecMode::Sim(SimScheduler::new(SchedulePolicy::RandomWalk {
            seed,
        })));
    }
    Err(Error::Graph(format!(
        "--mode: `{spec}` is not thread, pooled:W, or sim:SEED"
    )))
}

fn load_dot(f: &Flags) -> Result<DistGraph> {
    let path = f.required("--dot")?;
    let text = std::fs::read_to_string(path).map_err(Error::Io)?;
    DistGraph::from_dot(&text)
}

/// Runs `A`, cross-checks against the lockstep reference, and returns
/// `(outputs, rounds executed)`.
fn run_verified<A: NodeAlgorithm>(
    g: &DistGraph,
    inputs: &[u64],
    cfg: DistConfig,
) -> Result<(Vec<u64>, u64)> {
    let rounds = effective_rounds::<A>(g, cfg.max_rounds);
    let (out, _report) = run::<A>(g, inputs, cfg)?;
    let reference = simulate::<A>(g, inputs, rounds)?;
    if out != reference {
        return Err(Error::Graph(
            "network outputs diverged from the lockstep reference simulation".into(),
        ));
    }
    Ok((out, rounds))
}

fn cmd_run(args: &[String]) -> Result<()> {
    kpn_lint::install();
    let f = Flags { args };
    let g = load_dot(&f)?;
    let max_rounds: u64 = f.num("--rounds", kpn_dist::DEFAULT_MAX_ROUNDS)?;
    if max_rounds == kpn_dist::DEFAULT_MAX_ROUNDS && f.get("--algo") == Some("gossip") {
        eprintln!(
            "note: gossip never halts on its own; bounding at --rounds {}",
            g.n()
        );
    }
    let cfg = || -> Result<DistConfig> {
        Ok(DistConfig {
            mode: match f.get("--mode") {
                Some(m) => parse_mode(m)?,
                None => ExecMode::default(),
            },
            max_rounds,
            ..DistConfig::default()
        })
    };
    let algo = f.required("--algo")?;
    let (outputs, rounds, summary) = match algo {
        "bmm" => {
            let colors = g.bipartition()?;
            let (out, rounds) = run_verified::<Bmm>(&g, &colors, cfg()?)?;
            let matched = check_matching(&g, &out)?;
            (out, rounds, format!("maximal matching of {matched} edges"))
        }
        "mvc3" => {
            let inputs = vec![0u64; g.n()];
            let (out, rounds) = run_verified::<Mvc3>(&g, &inputs, cfg()?)?;
            let size = check_cover(&g, &out)?;
            (out, rounds, format!("vertex cover of {size} nodes"))
        }
        "gossip" => {
            let inputs: Vec<u64> = (0..g.n() as u64).collect();
            let mut cfg = cfg()?;
            cfg.max_rounds = cfg.max_rounds.min(g.n() as u64);
            let rounds = cfg.max_rounds;
            let (out, _) = run_verified::<GossipMax>(&g, &inputs, cfg)?;
            let max = g.n() as u64 - 1;
            let reached = out.iter().filter(|&&o| o == max).count();
            (
                out,
                rounds,
                format!("max reached {reached}/{} nodes", g.n()),
            )
        }
        other => return Err(Error::Graph(format!("unknown algorithm `{other}`"))),
    };
    println!(
        "{}: {} nodes, {} edges, {rounds} rounds: {summary} (verified against reference)",
        g.name(),
        g.n(),
        g.edges().len()
    );
    if f.has("--print-outputs") {
        for (v, o) in outputs.iter().enumerate() {
            println!("{v}\t{o}");
        }
    }
    Ok(())
}

fn cmd_export(args: &[String]) -> Result<()> {
    let f = Flags { args };
    let g = load_dot(&f)?;
    let algo = f.required("--algo")?;
    let parts: usize = f.num("--parts", 2)?;
    let max_rounds: u64 = f.num("--rounds", kpn_dist::DEFAULT_MAX_ROUNDS)?;
    let inputs = match algo {
        "bmm" => g.bipartition()?,
        _ => vec![0u64; g.n()],
    };
    let specs = partition_specs(&g, algo, parts, kpn_dist::MIN_CAPACITY, &inputs, max_rounds)?;
    let diags = kpn_lint::check_specs(&specs);
    if !diags.is_empty() {
        for d in &diags {
            eprintln!("{d}");
        }
        return Err(Error::Graph(format!(
            "partition plan failed spec lint with {} finding(s)",
            diags.len()
        )));
    }
    let prefix = f.get("-o").unwrap_or("dist");
    for (name, spec) in &specs {
        let path = format!("{prefix}.{name}.spec");
        let bytes = kpn_codec::to_bytes(spec)?;
        std::fs::write(&path, &bytes).map_err(Error::Io)?;
        println!(
            "{path}: {} processes, {} local channels, {} bytes (spec lint clean)",
            spec.processes.len(),
            spec.channels.len(),
            bytes.len()
        );
    }
    Ok(())
}
