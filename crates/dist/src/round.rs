//! Synchronous-round execution of node-local algorithms on a KPN.
//!
//! The PN/LOCAL models of distributed computing assume *synchronous
//! rounds*: in every round each node first sends one message on every
//! incident edge, then receives one message from every incident edge,
//! then updates its state. [`RoundSync`] runs a [`NodeAlgorithm`] under
//! exactly those semantics on a Kahn process network — one process per
//! node, one byte channel per edge direction, one `u64` message per
//! channel per round.
//!
//! Synchrony comes from the blocking-read rule, not from a barrier: a
//! node cannot finish round `r` until every neighbor has *sent* its
//! round-`r` messages, and FIFO channels make the `r`-th message on a
//! channel the round-`r` message by construction. Nodes may therefore
//! skew (a fast node can run ahead until the bounded channels fill), but
//! every node observes exactly the message sequence of the lockstep
//! schedule — which is why per-node outputs are a pure function of the
//! topology and inputs, independent of the executor (Kahn determinacy,
//! restated for rounds; see DESIGN.md §5h). [`simulate`] is that
//! lockstep schedule as a plain loop, usable as a reference oracle
//! against [`run`] at any scale.
//!
//! Every execution is bounded by a communication-round limit: the
//! adapter runs `min(algorithm bound, max_rounds)` rounds and then stops
//! every node in the same round, so even a non-terminating algorithm
//! ([`crate::algorithms::GossipMax`]) halts cleanly with well-defined
//! partial outputs.

use crate::graph::DistGraph;
use kpn_core::{
    DataReader, DataWriter, Error, Iterative, LintLevel, Network, NetworkConfig, NetworkReport,
    ProcessCtx, ProcessTag, Result,
};
use std::sync::{Arc, Mutex};

/// What a node knows at time zero (the port-numbering model): its id,
/// its degree, and one `u64` of local input (a color, a weight, …).
#[derive(Debug, Clone, Copy)]
pub struct NodeInfo {
    /// Node id in `0..n`. LOCAL-model algorithms may use it as a unique
    /// identifier; PN-model algorithms should ignore it.
    pub id: usize,
    /// Number of incident edges (= ports, numbered `0..degree`).
    pub degree: usize,
    /// Node-local input value.
    pub input: u64,
}

/// A node-local algorithm in the synchronous port-numbering model.
///
/// Each round `r = 1, 2, …` the runtime calls [`send`](Self::send) to
/// fill one outgoing `u64` per port, delivers messages, then calls
/// [`receive`](Self::receive) with one incoming `u64` per port
/// (`inbox[p]` is the message from the neighbor on port `p`). A node
/// whose algorithm has logically stopped keeps being called — it should
/// send an idle message and ignore its inbox — until the global round
/// limit stops every node in the same round.
pub trait NodeAlgorithm: Send + 'static {
    /// Algorithm name for diagnostics and process naming.
    const NAME: &'static str;

    /// State at time zero.
    fn new(info: NodeInfo) -> Self;

    /// Number of rounds after which every node's output is final, as a
    /// function of the maximum degree Δ — or `None` for algorithms with
    /// no bound (they run until the configured round limit).
    fn round_bound(max_degree: usize) -> Option<u64>;

    /// Fills `outbox[p]` with the round-`round` message for port `p`.
    /// `outbox.len()` equals the node's degree.
    fn send(&mut self, round: u64, outbox: &mut [u64]);

    /// Consumes the round-`round` messages; `inbox[p]` came from the
    /// neighbor on port `p`.
    fn receive(&mut self, round: u64, inbox: &[u64]);

    /// The node's current output value.
    fn output(&self) -> u64;
}

/// Rounds actually executed for algorithm `A` on `graph` under the
/// communication-round limit `max_rounds`: the algorithm's own bound
/// when it has one and it is smaller, else `max_rounds`.
pub fn effective_rounds<A: NodeAlgorithm>(graph: &DistGraph, max_rounds: u64) -> u64 {
    match A::round_bound(graph.max_degree()) {
        Some(bound) => bound.min(max_rounds),
        None => max_rounds,
    }
}

/// Minimum per-direction channel capacity: two 8-byte messages, so a
/// node can complete its round-`r+1` sends while the neighbor still
/// holds round `r` unread — the monitor never needs to grow a channel
/// and the L003 one-token floor is satisfied with headroom.
pub const MIN_CAPACITY: usize = 16;

/// The [`Iterative`] adapter: one KPN process executing one node of a
/// [`NodeAlgorithm`]. Each `step` is one synchronous round — write one
/// message per out-port (port order), then block-read one message per
/// in-port (port order). The iteration limit is the round count, so
/// every node stops in the same round and endpoint teardown is clean.
pub struct RoundSync<A: NodeAlgorithm> {
    algo: A,
    id: usize,
    round: u64,
    writers: Vec<DataWriter>,
    readers: Vec<DataReader>,
    outbox: Vec<u64>,
    inbox: Vec<u64>,
    rounds: u64,
    outputs: Arc<Mutex<Vec<u64>>>,
    tag: ProcessTag,
}

impl<A: NodeAlgorithm> Iterative for RoundSync<A> {
    fn name(&self) -> String {
        format!("{}[{}]", A::NAME, self.id)
    }

    fn limit(&self) -> Option<u64> {
        Some(self.rounds)
    }

    fn lint_tag(&self) -> Option<&ProcessTag> {
        Some(&self.tag)
    }

    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        self.round += 1;
        self.algo.send(self.round, &mut self.outbox);
        for (w, &msg) in self.writers.iter_mut().zip(&self.outbox) {
            w.write_u64(msg)?;
        }
        for (r, slot) in self.readers.iter_mut().zip(self.inbox.iter_mut()) {
            *slot = r.read_u64()?;
        }
        self.algo.receive(self.round, &self.inbox);
        Ok(())
    }

    fn on_stop(&mut self) {
        self.outputs.lock().unwrap()[self.id] = self.algo.output();
    }
}

/// Builds the round-synchronous network for `graph` into `net` (one
/// [`RoundSync`] process per node, two channels per edge) and returns
/// the shared per-node output table, filled as nodes stop. Channels and
/// processes are created in deterministic order on the calling thread,
/// so recorded histories key identically under every executor.
///
/// Fails on an input-length mismatch and on isolated nodes: a node with
/// no ports would be an orphan process (lint L004), and no PN-model
/// algorithm can distinguish it from a one-node network anyway.
pub fn build_network<A: NodeAlgorithm>(
    net: &Network,
    graph: &DistGraph,
    inputs: &[u64],
    max_rounds: u64,
    capacity: usize,
) -> Result<Arc<Mutex<Vec<u64>>>> {
    let n = graph.n();
    if n == 0 {
        return Err(Error::Graph("cannot run on an empty graph".into()));
    }
    if inputs.len() != n {
        return Err(Error::Graph(format!(
            "{} inputs for {n} nodes",
            inputs.len()
        )));
    }
    let adj = graph.adjacency();
    if let Some(v) = adj.iter().position(|ports| ports.is_empty()) {
        return Err(Error::Graph(format!(
            "node {v} is isolated: every node needs at least one edge"
        )));
    }
    let capacity = capacity.max(MIN_CAPACITY);
    let rounds = effective_rounds::<A>(graph, max_rounds);

    // Two directed channels per undirected edge, created in edge order so
    // history keys are deterministic. writer[v][p] / reader[v][p] follow
    // the port numbering of `DistGraph::adjacency`.
    let mut writers: Vec<Vec<Option<kpn_core::ChannelWriter>>> =
        adj.iter().map(|p| (0..p.len()).map(|_| None).collect()).collect();
    let mut readers: Vec<Vec<Option<kpn_core::ChannelReader>>> =
        adj.iter().map(|p| (0..p.len()).map(|_| None).collect()).collect();
    let mut next_port = vec![0usize; n];
    for &(u, v) in graph.edges() {
        let pu = next_port[u];
        let pv = next_port[v];
        next_port[u] += 1;
        next_port[v] += 1;
        let (w_uv, r_uv) = net.channel_with_capacity(capacity);
        let (w_vu, r_vu) = net.channel_with_capacity(capacity);
        writers[u][pu] = Some(w_uv);
        readers[v][pv] = Some(r_uv);
        writers[v][pv] = Some(w_vu);
        readers[u][pu] = Some(r_vu);
    }

    let outputs = Arc::new(Mutex::new(vec![0u64; n]));
    for v in 0..n {
        let degree = adj[v].len();
        let tag = ProcessTag::new(format!("{}[{v}]", A::NAME));
        let node_writers: Vec<DataWriter> = writers[v]
            .iter_mut()
            .map(|slot| {
                let w = slot.take().expect("every port has a writer");
                w.attach(&tag);
                // One u64 message per round; no per-firing rate is
                // declared because a round is send-then-receive, not an
                // atomic SDF firing — as an SDF actor every edge pair
                // would be a zero-delay cycle and L005 would (rightly,
                // for that model) reject it.
                w.declare_item::<u64>(8);
                DataWriter::unbuffered(w)
            })
            .collect();
        let node_readers: Vec<DataReader> = readers[v]
            .iter_mut()
            .map(|slot| {
                let r = slot.take().expect("every port has a reader");
                r.attach(&tag);
                r.declare_item::<u64>(8);
                DataReader::unbuffered(r)
            })
            .collect();
        net.add(RoundSync {
            algo: A::new(NodeInfo {
                id: v,
                degree,
                input: inputs[v],
            }),
            id: v,
            round: 0,
            writers: node_writers,
            readers: node_readers,
            outbox: vec![0; degree],
            inbox: vec![0; degree],
            rounds,
            outputs: outputs.clone(),
            tag,
        });
    }
    Ok(outputs)
}

/// Default communication-round limit: high enough for every bounded
/// algorithm in this crate, low enough that an unbounded algorithm on a
/// small graph still halts promptly in tests.
pub const DEFAULT_MAX_ROUNDS: u64 = 1 << 20;

/// How to execute a distributed-algorithm run.
pub struct DistConfig {
    /// Executor (thread / pooled / sim).
    pub mode: kpn_core::ExecMode,
    /// Communication-round limit; the run executes
    /// `min(algorithm bound, max_rounds)` rounds.
    pub max_rounds: u64,
    /// Per-direction channel capacity in bytes (clamped up to
    /// [`MIN_CAPACITY`]).
    pub capacity: usize,
    /// Record per-channel histories for determinacy comparison.
    pub record_history: bool,
    /// Static-lint enforcement; generated topologies must survive
    /// [`LintLevel::Deny`], the default here.
    pub lint: LintLevel,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            mode: kpn_core::ExecMode::default(),
            max_rounds: DEFAULT_MAX_ROUNDS,
            capacity: MIN_CAPACITY,
            record_history: false,
            lint: LintLevel::Deny,
        }
    }
}

/// Builds and runs algorithm `A` on `graph` under `cfg`, returning the
/// per-node outputs and the network's report.
pub fn run<A: NodeAlgorithm>(
    graph: &DistGraph,
    inputs: &[u64],
    cfg: DistConfig,
) -> Result<(Vec<u64>, NetworkReport)> {
    let net = Network::with_config(NetworkConfig {
        mode: cfg.mode,
        record_history: cfg.record_history,
        lint: cfg.lint,
        ..Default::default()
    });
    let outputs = build_network::<A>(&net, graph, inputs, cfg.max_rounds, cfg.capacity)?;
    let report = net.run()?;
    let out = outputs.lock().unwrap().clone();
    Ok((out, report))
}

/// The lockstep reference schedule as a plain loop — no processes, no
/// channels. Executes exactly `rounds` rounds and returns the per-node
/// outputs; [`run`] with the same graph, inputs and effective round
/// count must produce the identical vector under every executor.
pub fn simulate<A: NodeAlgorithm>(
    graph: &DistGraph,
    inputs: &[u64],
    rounds: u64,
) -> Result<Vec<u64>> {
    let n = graph.n();
    if inputs.len() != n {
        return Err(Error::Graph(format!(
            "{} inputs for {n} nodes",
            inputs.len()
        )));
    }
    let adj = graph.adjacency();
    let mut algos: Vec<A> = (0..n)
        .map(|v| {
            A::new(NodeInfo {
                id: v,
                degree: adj[v].len(),
                input: inputs[v],
            })
        })
        .collect();
    let mut outboxes: Vec<Vec<u64>> = adj.iter().map(|p| vec![0u64; p.len()]).collect();
    let mut inboxes = outboxes.clone();
    for round in 1..=rounds {
        for (v, algo) in algos.iter_mut().enumerate() {
            algo.send(round, &mut outboxes[v]);
        }
        for (v, ports) in adj.iter().enumerate() {
            for (p, &(u, back)) in ports.iter().enumerate() {
                inboxes[v][p] = outboxes[u][back];
            }
        }
        for (v, algo) in algos.iter_mut().enumerate() {
            algo.receive(round, &inboxes[v]);
        }
    }
    Ok(algos.iter().map(|a| a.output()).collect())
}
