//! Executing an SDF graph on the KPN runtime.
//!
//! Each actor becomes one KPN process whose `step` is one firing: read
//! `cons` tokens from every input edge, call the actor function, write
//! `prod` tokens to every output edge. Channels get the **exact**
//! capacities computed by the static schedule, so the run is provably
//! deadlock-free with zero monitor interventions — the static complement
//! of Parks' dynamic buffer growth (validated by the tests below).

use crate::graph::{ActorId, SdfGraph};
use crate::schedule::Schedule;
use kpn_core::{
    ChannelReader, ChannelWriter, DataReader, DataWriter, Error, Iterative, Network, NetworkReport,
    ProcessCtx, Result,
};
use std::collections::HashMap;

/// One firing of an SDF actor: `inputs[i]` holds exactly the consumed
/// tokens of the i-th connected input edge (in graph insertion order);
/// push produced tokens for each output edge into `outputs`.
pub type FireFn = Box<dyn FnMut(&[Vec<i64>], &mut [Vec<i64>]) -> Result<()> + Send + 'static>;

/// A runnable actor body bound to an [`ActorId`].
pub struct SdfActor {
    /// The actor this body implements.
    pub id: ActorId,
    /// The firing function.
    pub fire: FireFn,
}

impl SdfActor {
    /// Binds a firing closure to an actor.
    pub fn new(
        id: ActorId,
        fire: impl FnMut(&[Vec<i64>], &mut [Vec<i64>]) -> Result<()> + Send + 'static,
    ) -> Self {
        SdfActor {
            id,
            fire: Box::new(fire),
        }
    }
}

struct ActorProcess {
    name: String,
    inputs: Vec<(DataReader, u64)>,
    outputs: Vec<(DataWriter, u64)>,
    fire: FireFn,
    firings: Option<u64>,
    in_buf: Vec<Vec<i64>>,
    out_buf: Vec<Vec<i64>>,
}

impl Iterative for ActorProcess {
    fn name(&self) -> String {
        self.name.clone()
    }
    fn limit(&self) -> Option<u64> {
        self.firings
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        for (slot, (reader, rate)) in self.in_buf.iter_mut().zip(self.inputs.iter_mut()) {
            slot.clear();
            for _ in 0..*rate {
                slot.push(reader.read_i64()?);
            }
        }
        for slot in &mut self.out_buf {
            slot.clear();
        }
        (self.fire)(&self.in_buf, &mut self.out_buf)?;
        for (slot, (writer, rate)) in self.out_buf.iter().zip(self.outputs.iter_mut()) {
            if slot.len() != *rate as usize {
                return Err(Error::Graph(format!(
                    "{}: produced {} tokens, rate is {rate}",
                    self.name,
                    slot.len()
                )));
            }
            for v in slot {
                writer.write_i64(*v)?;
            }
        }
        Ok(())
    }
}

/// Runs the SDF graph for `periods` schedule periods on a KPN network with
/// the schedule's exact buffer bounds. Returns the network report — the
/// caller can assert `report.monitor.growths == 0` to confirm the static
/// bounds sufficed.
pub fn execute(
    graph: &SdfGraph,
    schedule: &Schedule,
    actors: Vec<SdfActor>,
    periods: u64,
) -> Result<NetworkReport> {
    let n = graph.actor_count();
    if actors.len() != n {
        return Err(Error::Graph(format!(
            "need {n} actor bodies, got {}",
            actors.len()
        )));
    }
    let mut bodies: HashMap<usize, FireFn> = HashMap::new();
    for a in actors {
        if bodies.insert(a.id.0, a.fire).is_some() {
            return Err(Error::Graph(format!("duplicate body for actor {}", a.id.0)));
        }
    }

    let net = Network::new();
    // One channel per edge, capacity = bound (tokens) × 8 bytes, plus the
    // initial delay tokens (value 0, the SDF convention).
    let mut edge_writers: Vec<Option<ChannelWriter>> = Vec::new();
    let mut edge_readers: Vec<Option<ChannelReader>> = Vec::new();
    for (i, e) in graph.edges.iter().enumerate() {
        let capacity = (schedule.edge_bounds[i].max(1) as usize) * 8;
        let (mut w, r) = net.channel_with_capacity(capacity);
        for _ in 0..e.delays {
            w.write_all(&0i64.to_be_bytes())?;
        }
        edge_writers.push(Some(w));
        edge_readers.push(Some(r));
    }

    for a in 0..n {
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        for (i, e) in graph.edges.iter().enumerate() {
            if e.to == a {
                inputs.push((
                    DataReader::new(edge_readers[i].take().expect("single consumer")),
                    e.cons,
                ));
            }
        }
        for (i, e) in graph.edges.iter().enumerate() {
            if e.from == a {
                outputs.push((
                    DataWriter::new(edge_writers[i].take().expect("single producer")),
                    e.prod,
                ));
            }
        }
        let in_buf = vec![Vec::new(); inputs.len()];
        let out_buf = vec![Vec::new(); outputs.len()];
        net.add(ActorProcess {
            name: graph.name(ActorId(a)).to_string(),
            inputs,
            outputs,
            fire: bodies.remove(&a).expect("validated above"),
            firings: Some(schedule.repetitions[a] * periods),
            in_buf,
            out_buf,
        });
    }
    net.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn upsampler_chain_runs_with_exact_bounds() {
        // src -2/3-> interp -1/1-> sink, 4 periods.
        let mut g = SdfGraph::new();
        let src = g.actor("src");
        let interp = g.actor("interp");
        let sink = g.actor("sink");
        g.edge(src, interp, 2, 3);
        g.edge(interp, sink, 1, 1);
        let s = Schedule::build(&g).unwrap();
        assert_eq!(s.repetitions, vec![3, 2, 2]);

        let collected = Arc::new(Mutex::new(Vec::new()));
        let sink_out = collected.clone();
        let mut next = 0i64;
        let report = execute(
            &g,
            &s,
            vec![
                SdfActor::new(src, move |_ins, outs| {
                    outs[0].push(next);
                    outs[0].push(next + 1);
                    next += 2;
                    Ok(())
                }),
                SdfActor::new(interp, |ins, outs| {
                    // Average the 3 consumed tokens into 1.
                    let sum: i64 = ins[0].iter().sum();
                    outs[0].push(sum / 3);
                    Ok(())
                }),
                SdfActor::new(sink, move |ins, _outs| {
                    sink_out.lock().unwrap().extend_from_slice(&ins[0]);
                    Ok(())
                }),
            ],
            4,
        )
        .unwrap();
        // src fired 12 times → 24 tokens → interp fired 8 → 8 results.
        let got = collected.lock().unwrap();
        assert_eq!(got.len(), 8);
        // Averages of consecutive triples of 0,1,2,...
        assert_eq!(got[0], 1); // avg(0,1,2)
        assert_eq!(got[1], 4); // avg(3,4,5)
        // The static bounds must have sufficed: no monitor growth.
        assert_eq!(report.monitor.growths, 0, "static bounds violated");
    }

    #[test]
    fn feedback_accumulator() {
        // acc -1/1-> acc (self-loop with 1 delay) models an accumulator;
        // tap the running sum via a side edge to a sink.
        let mut g = SdfGraph::new();
        let acc = g.actor("acc");
        let sink = g.actor("sink");
        g.edge_with_delays(acc, acc, 1, 1, 1);
        g.edge(acc, sink, 1, 1);
        let s = Schedule::build(&g).unwrap();
        let sums = Arc::new(Mutex::new(Vec::new()));
        let out = sums.clone();
        let report = execute(
            &g,
            &s,
            vec![
                SdfActor::new(acc, |ins, outs| {
                    let state = ins[0][0];
                    let next = state + 1; // count firings
                    outs[0].push(next); // back around the loop
                    outs[1].push(next); // tap
                    Ok(())
                }),
                SdfActor::new(sink, move |ins, _| {
                    out.lock().unwrap().push(ins[0][0]);
                    Ok(())
                }),
            ],
            10,
        )
        .unwrap();
        assert_eq!(*sums.lock().unwrap(), (1..=10).collect::<Vec<i64>>());
        assert_eq!(report.monitor.growths, 0);
    }

    #[test]
    fn wrong_production_rate_is_reported() {
        let mut g = SdfGraph::new();
        let a = g.actor("a");
        let b = g.actor("b");
        g.edge(a, b, 2, 2);
        let s = Schedule::build(&g).unwrap();
        let result = execute(
            &g,
            &s,
            vec![
                SdfActor::new(a, |_, outs| {
                    outs[0].push(1); // rate says 2!
                    Ok(())
                }),
                SdfActor::new(b, |_, _| Ok(())),
            ],
            1,
        );
        assert!(result.is_err());
    }

    #[test]
    fn missing_bodies_rejected() {
        let mut g = SdfGraph::new();
        let a = g.actor("a");
        let b = g.actor("b");
        g.edge(a, b, 1, 1);
        let s = Schedule::build(&g).unwrap();
        assert!(execute(&g, &s, vec![SdfActor::new(a, |_, _| Ok(()))], 1).is_err());
    }

    #[test]
    fn multirate_diamond_end_to_end() {
        //        ┌-2/1-> up ─3/1─┐
        // src ───┤               ├-> join -> (counts checked)
        //        └-1/1-> thru ─1/2┘
        // Rates chosen so q = [1, 2, 1, ...]: verify via schedule, then run.
        let mut g = SdfGraph::new();
        let src = g.actor("src");
        let up = g.actor("up");
        let thru = g.actor("thru");
        let join = g.actor("join");
        g.edge(src, up, 2, 1); // src:2 out, up consumes 1 → q_up = 2 q_src
        g.edge(src, thru, 2, 2); // thru consumes 2 → q_thru = q_src
        g.edge(up, join, 1, 2); // join consumes 2 → q_join = q_up/2 = q_src
        g.edge(thru, join, 1, 1); // consistency: q_thru = q_join ✓
        let s = Schedule::build(&g).unwrap();
        assert_eq!(s.repetitions, vec![1, 2, 1, 1]);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let out = seen.clone();
        let report = execute(
            &g,
            &s,
            vec![
                SdfActor::new(src, |_, outs| {
                    outs[0].extend_from_slice(&[10, 20]);
                    outs[1].extend_from_slice(&[1, 2]);
                    Ok(())
                }),
                SdfActor::new(up, |ins, outs| {
                    outs[0].push(ins[0][0] * 2);
                    Ok(())
                }),
                SdfActor::new(thru, |ins, outs| {
                    outs[0].push(ins[0][0] + ins[0][1]);
                    Ok(())
                }),
                SdfActor::new(join, move |ins, _| {
                    out.lock().unwrap().push((ins[0].to_vec(), ins[1].to_vec()));
                    Ok(())
                }),
            ],
            3,
        )
        .unwrap();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0], (vec![20, 40], vec![3]));
        assert_eq!(report.monitor.growths, 0);
    }
}
