//! SDF graph structure and the balance equations.

use std::fmt;

/// Identifies an actor in an [`SdfGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ActorId(pub(crate) usize);

/// Identifies an edge in an [`SdfGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(pub(crate) usize);

/// Errors from SDF analysis.
#[derive(Debug, PartialEq, Eq)]
pub enum SdfError {
    /// The balance equations have no positive solution: tokens would
    /// accumulate or starve on some edge no matter the schedule.
    Inconsistent {
        /// The edge whose balance equation failed.
        edge: EdgeId,
    },
    /// The graph is consistent but cannot complete one period from its
    /// initial tokens: it needs more delays.
    Deadlocked {
        /// Actors that still owed firings when progress stopped.
        stuck: Vec<ActorId>,
    },
    /// Graph construction error (dangling actor, zero rate, …).
    Malformed(String),
    /// The graph is disconnected; repetition vectors are only meaningful
    /// per connected component.
    Disconnected,
}

impl fmt::Display for SdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdfError::Inconsistent { edge } => {
                write!(f, "inconsistent rates on edge {}", edge.0)
            }
            SdfError::Deadlocked { stuck } => {
                write!(f, "insufficient initial tokens; stuck actors: {stuck:?}")
            }
            SdfError::Malformed(m) => write!(f, "malformed graph: {m}"),
            SdfError::Disconnected => write!(f, "graph is not connected"),
        }
    }
}

impl std::error::Error for SdfError {}

#[derive(Debug, Clone)]
pub(crate) struct Edge {
    pub from: usize,
    pub to: usize,
    /// Tokens produced per firing of `from`.
    pub prod: u64,
    /// Tokens consumed per firing of `to`.
    pub cons: u64,
    /// Initial tokens (delays) on the edge.
    pub delays: u64,
}

/// A synchronous dataflow graph: actors with fixed per-firing token rates.
#[derive(Debug, Default)]
pub struct SdfGraph {
    pub(crate) names: Vec<String>,
    pub(crate) edges: Vec<Edge>,
}

impl SdfGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an actor.
    pub fn actor(&mut self, name: impl Into<String>) -> ActorId {
        self.names.push(name.into());
        ActorId(self.names.len() - 1)
    }

    /// Connects `from` to `to`: each firing of `from` produces `prod`
    /// tokens, each firing of `to` consumes `cons`.
    pub fn edge(&mut self, from: ActorId, to: ActorId, prod: u64, cons: u64) -> EdgeId {
        self.edge_with_delays(from, to, prod, cons, 0)
    }

    /// Like [`SdfGraph::edge`] with `delays` initial tokens — the classic
    /// mechanism for breaking feedback-loop deadlocks.
    pub fn edge_with_delays(
        &mut self,
        from: ActorId,
        to: ActorId,
        prod: u64,
        cons: u64,
        delays: u64,
    ) -> EdgeId {
        self.edges.push(Edge {
            from: from.0,
            to: to.0,
            prod,
            cons,
            delays,
        });
        EdgeId(self.edges.len() - 1)
    }

    /// Number of actors.
    pub fn actor_count(&self) -> usize {
        self.names.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Actor name.
    pub fn name(&self, a: ActorId) -> &str {
        &self.names[a.0]
    }

    fn validate(&self) -> Result<(), SdfError> {
        if self.names.is_empty() {
            return Err(SdfError::Malformed("no actors".into()));
        }
        for (i, e) in self.edges.iter().enumerate() {
            if e.prod == 0 || e.cons == 0 {
                return Err(SdfError::Malformed(format!("edge {i} has a zero rate")));
            }
            if e.from >= self.names.len() || e.to >= self.names.len() {
                return Err(SdfError::Malformed(format!(
                    "edge {i} references a missing actor"
                )));
            }
        }
        Ok(())
    }

    /// Solves the balance equations, returning the minimal positive
    /// repetition vector `q`: firing every actor `q[a]` times returns
    /// every edge to its initial token count.
    pub fn repetition_vector(&self) -> Result<Vec<u64>, SdfError> {
        self.validate()?;
        let n = self.names.len();
        // Propagate rational firing ratios over the (undirected) graph:
        // q[to]/q[from] = prod/cons for each edge.
        // Store q[a] as a fraction num/den; normalize at the end.
        let mut num = vec![0u64; n];
        let mut den = vec![0u64; n];
        let mut visited = vec![false; n];
        num[0] = 1;
        den[0] = 1;
        visited[0] = true;
        let mut frontier = vec![0usize];
        while let Some(a) = frontier.pop() {
            for e in &self.edges {
                let (b, ratio_num, ratio_den) = if e.from == a {
                    // q[to] = q[from] * prod / cons
                    (e.to, e.prod, e.cons)
                } else if e.to == a {
                    // q[from] = q[to] * cons / prod
                    (e.from, e.cons, e.prod)
                } else {
                    continue;
                };
                let (cand_num, cand_den) = reduce(num[a] * ratio_num, den[a] * ratio_den);
                if !visited[b] {
                    num[b] = cand_num;
                    den[b] = cand_den;
                    visited[b] = true;
                    frontier.push(b);
                }
                // Consistency is verified for every edge below.
            }
        }
        if visited.iter().any(|v| !v) {
            return Err(SdfError::Disconnected);
        }
        // Check every balance equation against the computed ratios.
        for (i, e) in self.edges.iter().enumerate() {
            // q[from] * prod == q[to] * cons  (as fractions)
            let lhs = (num[e.from] as u128 * e.prod as u128) * den[e.to] as u128;
            let rhs = (num[e.to] as u128 * e.cons as u128) * den[e.from] as u128;
            if lhs != rhs {
                return Err(SdfError::Inconsistent { edge: EdgeId(i) });
            }
        }
        // Scale all fractions to the smallest integer vector.
        let l = den.iter().fold(1u64, |acc, &d| lcm(acc, d));
        let mut q: Vec<u64> = (0..n).map(|a| num[a] * (l / den[a])).collect();
        let g = q.iter().fold(0u64, |acc, &v| gcd(acc, v));
        if g > 1 {
            for v in &mut q {
                *v /= g;
            }
        }
        Ok(q)
    }
}

pub(crate) fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

pub(crate) fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        0
    } else {
        a / gcd(a, b) * b
    }
}

fn reduce(n: u64, d: u64) -> (u64, u64) {
    let g = gcd(n, d).max(1);
    (n / g, d / g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_repetition_vector() {
        // a -2/3-> b -3/2-> c : q = [3, 2, 3]
        let mut g = SdfGraph::new();
        let a = g.actor("a");
        let b = g.actor("b");
        let c = g.actor("c");
        g.edge(a, b, 2, 3);
        g.edge(b, c, 3, 2);
        assert_eq!(g.repetition_vector().unwrap(), vec![3, 2, 3]);
    }

    #[test]
    fn homogeneous_graph_is_all_ones() {
        let mut g = SdfGraph::new();
        let a = g.actor("a");
        let b = g.actor("b");
        let c = g.actor("c");
        g.edge(a, b, 1, 1);
        g.edge(b, c, 1, 1);
        assert_eq!(g.repetition_vector().unwrap(), vec![1, 1, 1]);
    }

    #[test]
    fn classic_sample_rate_converter() {
        // The 44.1 kHz → 48 kHz style chain, scaled down: 3/2 then 7/5.
        let mut g = SdfGraph::new();
        let src = g.actor("src");
        let up = g.actor("up");
        let down = g.actor("down");
        g.edge(src, up, 2, 3);
        g.edge(up, down, 7, 5);
        let q = g.repetition_vector().unwrap();
        // q[src]*2 = q[up]*3 ; q[up]*7 = q[down]*5
        assert_eq!(q[0] * 2, q[1] * 3);
        assert_eq!(q[1] * 7, q[2] * 5);
        // Minimality: gcd = 1.
        let g0 = q.iter().fold(0, |acc, &v| super::gcd(acc, v));
        assert_eq!(g0, 1);
    }

    #[test]
    fn inconsistent_graph_detected() {
        // Triangle with incompatible rates: a->b 1:1, b->c 1:1, a->c 2:1.
        // q[a]=q[b]=q[c] from the first two edges, but the third needs
        // q[a]*2 == q[c].
        let mut g = SdfGraph::new();
        let a = g.actor("a");
        let b = g.actor("b");
        let c = g.actor("c");
        g.edge(a, b, 1, 1);
        g.edge(b, c, 1, 1);
        g.edge(a, c, 2, 1);
        // Either of the two conflicting edges may be reported, depending
        // on propagation order.
        assert!(matches!(
            g.repetition_vector(),
            Err(SdfError::Inconsistent { .. })
        ));
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut g = SdfGraph::new();
        let a = g.actor("a");
        let b = g.actor("b");
        let c = g.actor("c");
        let d = g.actor("d");
        g.edge(a, b, 1, 1);
        g.edge(c, d, 1, 1);
        assert_eq!(g.repetition_vector(), Err(SdfError::Disconnected));
    }

    #[test]
    fn zero_rate_rejected() {
        let mut g = SdfGraph::new();
        let a = g.actor("a");
        let b = g.actor("b");
        g.edge(a, b, 0, 1);
        assert!(matches!(g.repetition_vector(), Err(SdfError::Malformed(_))));
    }

    #[test]
    fn empty_graph_rejected() {
        let g = SdfGraph::new();
        assert!(matches!(g.repetition_vector(), Err(SdfError::Malformed(_))));
    }

    #[test]
    fn gcd_lcm_helpers() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 5), 0);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Any tree of positive rates is consistent (each non-root
            /// actor hangs off a random earlier actor), and the computed
            /// vector satisfies every balance equation exactly.
            #[test]
            fn trees_always_balance(
                edges in proptest::collection::vec((0usize..6, 1u64..20, 1u64..20), 1..8),
            ) {
                let mut g = SdfGraph::new();
                let mut actors = vec![g.actor("a0")];
                let mut specs = Vec::new();
                for (i, (parent, p, c)) in edges.iter().enumerate() {
                    let parent = actors[parent % actors.len()];
                    let child = g.actor(format!("a{}", i + 1));
                    actors.push(child);
                    specs.push((g.edge(parent, child, *p, *c), *p, *c));
                }
                let q = g.repetition_vector().unwrap();
                for (e, p, c) in specs {
                    let from = g.edges[e.0].from;
                    let to = g.edges[e.0].to;
                    prop_assert_eq!(
                        q[from] as u128 * p as u128,
                        q[to] as u128 * c as u128
                    );
                }
                let g0 = q.iter().fold(0, |acc, &v| gcd(acc, v));
                prop_assert_eq!(g0, 1, "vector must be minimal");
            }

            /// Any chain of positive rates is consistent, and the computed
            /// vector satisfies every balance equation exactly.
            #[test]
            fn chains_always_balance(rates in proptest::collection::vec((1u64..30, 1u64..30), 1..8)) {
                let mut g = SdfGraph::new();
                let mut prev = g.actor("a0");
                let mut edges = Vec::new();
                for (i, (p, c)) in rates.iter().enumerate() {
                    let next = g.actor(format!("a{}", i + 1));
                    edges.push((g.edge(prev, next, *p, *c), *p, *c));
                    prev = next;
                }
                let q = g.repetition_vector().unwrap();
                for (e, p, c) in edges {
                    let from = g.edges[e.0].from;
                    let to = g.edges[e.0].to;
                    prop_assert_eq!(q[from] as u128 * p as u128, q[to] as u128 * c as u128);
                }
                let g0 = q.iter().fold(0, |acc, &v| gcd(acc, v));
                prop_assert_eq!(g0, 1, "vector must be minimal");
            }
        }
    }
}
