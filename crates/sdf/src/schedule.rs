//! PASS construction: a periodic admissible sequential schedule, per-edge
//! buffer bounds, and deadlock detection.

use crate::graph::{ActorId, SdfError, SdfGraph};

/// Topological depth over the delay-free subgraph (edges carrying initial
/// tokens are feedback and excluded); computed by bounded relaxation so
/// cycles cannot loop forever. Drives the eager deepest-first firing
/// preference that keeps computed buffer bounds tight.
fn dataflow_depth(graph: &SdfGraph) -> Vec<usize> {
    let n = graph.actor_count();
    let mut d = vec![0usize; n];
    for _ in 0..n {
        let mut changed = false;
        for e in &graph.edges {
            if e.delays == 0 && e.from != e.to && d[e.to] < d[e.from] + 1 {
                d[e.to] = d[e.from] + 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    d
}

/// The minimal safe capacity (in **tokens**) for every edge, in creation
/// order: the per-edge peak occupancy of the eager deepest-first periodic
/// schedule. Channels sized to these bounds provably sustain unbounded
/// periodic execution without ever growing — [`Schedule::build_bounded`]
/// always succeeds with them. Errors propagate from schedule construction
/// (inconsistent rates, insufficient initial tokens).
pub fn minimal_capacities(graph: &SdfGraph) -> Result<Vec<u64>, SdfError> {
    Ok(Schedule::build(graph)?.edge_bounds)
}

/// A periodic admissible sequential schedule for one period of an SDF
/// graph, plus the exact buffer bound for every edge.
#[derive(Debug)]
pub struct Schedule {
    /// Actor firing order for one period.
    pub firings: Vec<ActorId>,
    /// Repetition vector (total firings per actor per period).
    pub repetitions: Vec<u64>,
    /// Maximum token occupancy per edge during the period — a channel
    /// capacity that provably suffices for unbounded execution.
    pub edge_bounds: Vec<u64>,
}

impl Schedule {
    /// Builds a schedule for the graph, or reports
    /// [`SdfError::Deadlocked`] when the initial tokens cannot carry the
    /// graph through one period.
    ///
    /// Strategy: repeatedly fire an eligible actor (still owes firings,
    /// enough tokens on every input), preferring the actor *deepest* in
    /// the dataflow (longest delay-free path from the sources, ties:
    /// lowest index). Draining downstream work before producing more
    /// upstream keeps the computed buffer bounds tight; SDF theory
    /// guarantees that if *any* eager order completes the period, every
    /// eager order does, so the preference never causes a false deadlock.
    pub fn build(graph: &SdfGraph) -> Result<Schedule, SdfError> {
        let q = graph.repetition_vector()?;
        let n = graph.actor_count();
        let mut remaining: Vec<u64> = q.clone();
        let mut tokens: Vec<u64> = graph.edges.iter().map(|e| e.delays).collect();
        let mut bounds: Vec<u64> = tokens.clone();
        let total: u64 = q.iter().sum();
        let mut firings = Vec::with_capacity(total as usize);

        let can_fire = |a: usize, tokens: &[u64], remaining: &[u64]| -> bool {
            remaining[a] > 0
                && graph
                    .edges
                    .iter()
                    .enumerate()
                    .all(|(i, e)| e.to != a || tokens[i] >= e.cons)
        };

        let depth = dataflow_depth(graph);
        while firings.len() < total as usize {
            let choice = (0..n)
                .filter(|&a| can_fire(a, &tokens, &remaining))
                .max_by_key(|&a| (depth[a], std::cmp::Reverse(a)));
            if let Some(a) = choice {
                // Fire actor a: consume then produce.
                for (i, e) in graph.edges.iter().enumerate() {
                    if e.to == a {
                        tokens[i] -= e.cons;
                    }
                }
                for (i, e) in graph.edges.iter().enumerate() {
                    if e.from == a {
                        tokens[i] += e.prod;
                        bounds[i] = bounds[i].max(tokens[i]);
                    }
                }
                remaining[a] -= 1;
                firings.push(ActorId(a));
            } else {
                let stuck = (0..n).filter(|&a| remaining[a] > 0).map(ActorId).collect();
                return Err(SdfError::Deadlocked { stuck });
            }
        }
        // One period must return every edge to its initial token count —
        // the defining property of the repetition vector.
        for (i, e) in graph.edges.iter().enumerate() {
            debug_assert_eq!(tokens[i], e.delays, "edge {i} not balanced");
        }
        Ok(Schedule {
            firings,
            repetitions: q,
            edge_bounds: bounds,
        })
    }

    /// Builds a schedule that respects per-edge capacity limits (in
    /// **tokens**, one entry per edge in creation order): an actor is only
    /// eligible when every output edge has room for its production burst.
    /// Errors with [`SdfError::Deadlocked`] when the capacities wedge the
    /// period — the static prediction of the runtime's artificial
    /// deadlock — and [`SdfError::Malformed`] when `capacities` does not
    /// match the edge count.
    ///
    /// The same eager deepest-first policy as [`Schedule::build`] drives
    /// the simulation, so success proves the capacities sufficient for
    /// unbounded periodic execution. Failure is a conservative verdict:
    /// eager orders are not provably optimal under capacity constraints,
    /// so a failing assignment is *suspect*, and the cure is the bound
    /// reported by [`minimal_capacities`], which this builder always
    /// accepts.
    pub fn build_bounded(graph: &SdfGraph, capacities: &[u64]) -> Result<Schedule, SdfError> {
        if capacities.len() != graph.edges.len() {
            return Err(SdfError::Malformed(format!(
                "expected {} capacities, got {}",
                graph.edges.len(),
                capacities.len()
            )));
        }
        let q = graph.repetition_vector()?;
        let n = graph.actor_count();
        let mut remaining: Vec<u64> = q.clone();
        let mut tokens: Vec<u64> = graph.edges.iter().map(|e| e.delays).collect();
        let mut bounds: Vec<u64> = tokens.clone();
        let total: u64 = q.iter().sum();
        let mut firings = Vec::with_capacity(total as usize);

        let can_fire = |a: usize, tokens: &[u64], remaining: &[u64]| -> bool {
            remaining[a] > 0
                && graph
                    .edges
                    .iter()
                    .enumerate()
                    .all(|(i, e)| e.to != a || tokens[i] >= e.cons)
                && graph.edges.iter().enumerate().all(|(i, e)| {
                    // Room for the production burst; a self-loop consumes
                    // before it produces.
                    let consumed = if e.to == a { e.cons } else { 0 };
                    e.from != a || tokens[i] - consumed + e.prod <= capacities[i]
                })
        };
        let depth = dataflow_depth(graph);
        while firings.len() < total as usize {
            let choice = (0..n)
                .filter(|&a| can_fire(a, &tokens, &remaining))
                .max_by_key(|&a| (depth[a], std::cmp::Reverse(a)));
            if let Some(a) = choice {
                for (i, e) in graph.edges.iter().enumerate() {
                    if e.to == a {
                        tokens[i] -= e.cons;
                    }
                }
                for (i, e) in graph.edges.iter().enumerate() {
                    if e.from == a {
                        tokens[i] += e.prod;
                        bounds[i] = bounds[i].max(tokens[i]);
                    }
                }
                remaining[a] -= 1;
                firings.push(ActorId(a));
            } else {
                let stuck = (0..n).filter(|&a| remaining[a] > 0).map(ActorId).collect();
                return Err(SdfError::Deadlocked { stuck });
            }
        }
        Ok(Schedule {
            firings,
            repetitions: q,
            edge_bounds: bounds,
        })
    }

    /// Channel capacities (in **tokens**) sufficient for unbounded
    /// periodic execution.
    pub fn channel_capacities(&self) -> &[u64] {
        &self.edge_bounds
    }

    /// Total firings in one period.
    pub fn period_length(&self) -> usize {
        self.firings.len()
    }

    /// Compresses the firing sequence into looped-schedule notation, the
    /// form SDF compilers emit — e.g. `(2 (2 src) up) (3 down)`. Adjacent
    /// repetitions collapse into loops greedily at increasing window
    /// sizes; the result always expands back to exactly
    /// [`Schedule::firings`].
    pub fn looped(&self, graph: &SdfGraph) -> String {
        #[derive(Clone, PartialEq)]
        enum Item {
            Fire(usize),
            Loop(u64, Vec<Item>),
        }
        fn render(items: &[Item], graph: &SdfGraph, out: &mut String) {
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                match item {
                    Item::Fire(a) => out.push_str(graph.name(ActorId(*a))),
                    Item::Loop(n, body) => {
                        out.push('(');
                        out.push_str(&n.to_string());
                        out.push(' ');
                        render(body, graph, out);
                        out.push(')');
                    }
                }
            }
        }
        // Greedy pass: collapse repeats of windows of size 1..=4, smallest
        // window first, repeated until no change.
        let mut items: Vec<Item> = self.firings.iter().map(|a| Item::Fire(a.0)).collect();
        loop {
            let mut changed = false;
            for w in 1..=4usize {
                let mut out: Vec<Item> = Vec::with_capacity(items.len());
                let mut i = 0;
                while i < items.len() {
                    if i + w <= items.len() {
                        let window = &items[i..i + w];
                        let mut reps = 1u64;
                        while i + (reps as usize + 1) * w <= items.len()
                            && items[i + reps as usize * w..i + (reps as usize + 1) * w] == *window
                        {
                            reps += 1;
                        }
                        if reps > 1 {
                            out.push(Item::Loop(reps, window.to_vec()));
                            i += reps as usize * w;
                            changed = true;
                            continue;
                        }
                    }
                    out.push(items[i].clone());
                    i += 1;
                }
                items = out;
            }
            if !changed {
                break;
            }
        }
        let mut s = String::new();
        render(&items, graph, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_schedule_completes() {
        let mut g = SdfGraph::new();
        let a = g.actor("a");
        let b = g.actor("b");
        g.edge(a, b, 2, 3);
        let s = Schedule::build(&g).unwrap();
        assert_eq!(s.repetitions, vec![3, 2]);
        assert_eq!(s.period_length(), 5);
        // Eager lowest-index order: a a b a b (b fires as soon as 3 ready
        // after two a-firings... a=2,4 tokens: a a -> 4 >= 3 -> b, a -> 3 -> b)
        assert_eq!(s.firings, vec![a, a, b, a, b]);
        // Peak tokens on the edge: after a a = 4.
        assert_eq!(s.edge_bounds, vec![4]);
    }

    #[test]
    fn feedback_loop_needs_delays() {
        let mut g = SdfGraph::new();
        let a = g.actor("a");
        let b = g.actor("b");
        g.edge(a, b, 1, 1);
        g.edge(b, a, 1, 1); // no delays: classic deadlock
        assert!(matches!(
            Schedule::build(&g),
            Err(SdfError::Deadlocked { .. })
        ));
    }

    #[test]
    fn feedback_loop_with_delay_schedules() {
        let mut g = SdfGraph::new();
        let a = g.actor("a");
        let b = g.actor("b");
        g.edge(a, b, 1, 1);
        g.edge_with_delays(b, a, 1, 1, 1);
        let s = Schedule::build(&g).unwrap();
        assert_eq!(s.repetitions, vec![1, 1]);
        assert_eq!(s.firings, vec![a, b]);
    }

    #[test]
    fn multirate_bounds_are_tight() {
        // a -3/1-> b : q = [1, 3]; peak = 3 after one a-firing.
        let mut g = SdfGraph::new();
        let a = g.actor("a");
        let b = g.actor("b");
        g.edge(a, b, 3, 1);
        let s = Schedule::build(&g).unwrap();
        assert_eq!(s.edge_bounds, vec![3]);
        // Downsampler: a -1/3-> b : q = [3, 1]; peak = 3.
        let mut g2 = SdfGraph::new();
        let a2 = g2.actor("a");
        let b2 = g2.actor("b");
        g2.edge(a2, b2, 1, 3);
        let s2 = Schedule::build(&g2).unwrap();
        assert_eq!(s2.edge_bounds, vec![3]);
    }

    #[test]
    fn diamond_graph_schedules() {
        //      ┌-> b ─┐        all rates 1; q = [1,1,1,1]
        //  a ──┤      ├──> d
        //      └-> c ─┘
        let mut g = SdfGraph::new();
        let a = g.actor("a");
        let b = g.actor("b");
        let c = g.actor("c");
        let d = g.actor("d");
        g.edge(a, b, 1, 1);
        g.edge(a, c, 1, 1);
        g.edge(b, d, 1, 1);
        g.edge(c, d, 1, 1);
        let s = Schedule::build(&g).unwrap();
        assert_eq!(s.repetitions, vec![1, 1, 1, 1]);
        assert_eq!(s.period_length(), 4);
        assert!(s.edge_bounds.iter().all(|&b| b == 1));
    }

    #[test]
    fn delays_count_toward_bounds() {
        let mut g = SdfGraph::new();
        let a = g.actor("a");
        let b = g.actor("b");
        g.edge_with_delays(a, b, 1, 1, 5);
        let s = Schedule::build(&g).unwrap();
        assert!(s.edge_bounds[0] >= 5);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Every consistent chain schedules, fires each actor exactly
            /// q times, and its bounds are at least the largest single
            /// production burst.
            #[test]
            fn chains_always_schedule(rates in proptest::collection::vec((1u64..8, 1u64..8), 1..6)) {
                let mut g = SdfGraph::new();
                let mut prev = g.actor("a0");
                for (i, (p, c)) in rates.iter().enumerate() {
                    let next = g.actor(format!("a{}", i + 1));
                    g.edge(prev, next, *p, *c);
                    prev = next;
                }
                let s = Schedule::build(&g).unwrap();
                // Count firings per actor.
                let mut counts = vec![0u64; g.actor_count()];
                for f in &s.firings {
                    counts[f.0] += 1;
                }
                prop_assert_eq!(counts, s.repetitions.clone());
                for (i, (p, _)) in rates.iter().enumerate() {
                    prop_assert!(s.edge_bounds[i] >= *p);
                }
            }
        }
    }

    #[test]
    fn bounded_schedule_accepts_minimal_capacities() {
        let mut g = SdfGraph::new();
        let a = g.actor("a");
        let b = g.actor("b");
        g.edge(a, b, 2, 3);
        let caps = minimal_capacities(&g).unwrap();
        assert_eq!(caps, vec![4]);
        let s = Schedule::build_bounded(&g, &caps).unwrap();
        assert_eq!(s.period_length(), 5);
        assert!(s.edge_bounds[0] <= caps[0]);
        let _ = (a, b);
    }

    #[test]
    fn bounded_schedule_rejects_capacity_below_burst() {
        // Producer bursts 3 tokens per firing: a 2-token channel can never
        // accept a firing, the static analogue of an artificial deadlock.
        let mut g = SdfGraph::new();
        let a = g.actor("a");
        let b = g.actor("b");
        g.edge(a, b, 3, 1);
        assert!(matches!(
            Schedule::build_bounded(&g, &[2]),
            Err(SdfError::Deadlocked { .. })
        ));
        // 3 tokens of room suffice (fire a, drain with three b firings).
        let s = Schedule::build_bounded(&g, &[3]).unwrap();
        assert_eq!(s.repetitions, vec![1, 3]);
        let _ = (a, b);
    }

    #[test]
    fn bounded_schedule_handles_self_loop_room() {
        // Self-loop 1/1 with one delay: each firing consumes before it
        // produces, so a 1-token capacity is enough.
        let mut g = SdfGraph::new();
        let a = g.actor("a");
        g.edge_with_delays(a, a, 1, 1, 1);
        let s = Schedule::build_bounded(&g, &[1]).unwrap();
        assert_eq!(s.firings, vec![a]);
    }

    #[test]
    fn bounded_schedule_validates_capacity_count() {
        let mut g = SdfGraph::new();
        let a = g.actor("a");
        let b = g.actor("b");
        g.edge(a, b, 1, 1);
        assert!(matches!(
            Schedule::build_bounded(&g, &[]),
            Err(SdfError::Malformed(_))
        ));
        let _ = (a, b);
    }

    #[test]
    fn looped_schedule_compresses_repeats() {
        let mut g = SdfGraph::new();
        let a = g.actor("a");
        let b = g.actor("b");
        g.edge(a, b, 1, 1);
        let s = Schedule::build(&g).unwrap();
        // q = [1,1]: schedule "a b" has nothing to compress.
        assert_eq!(s.looped(&g), "a b");

        let mut g2 = SdfGraph::new();
        let a2 = g2.actor("a");
        let b2 = g2.actor("b");
        g2.edge(a2, b2, 1, 3);
        let s2 = Schedule::build(&g2).unwrap();
        // q = [3,1]: "a a a b" → "(3 a) b".
        assert_eq!(s2.looped(&g2), "(3 a) b");
    }

    #[test]
    fn looped_schedule_nests_windows() {
        // a -1/1-> b with rates forcing alternation: q=[2,2] over 1:1 is
        // "a b a b" → "(2 a b)".
        let mut g = SdfGraph::new();
        let a = g.actor("a");
        let b = g.actor("b");
        let c = g.actor("c");
        g.edge(a, b, 1, 1);
        g.edge(b, c, 2, 1);
        // q: q_a = q_b; q_b*2 = q_c → q = [1,1,2]
        let s = Schedule::build(&g).unwrap();
        let text = s.looped(&g);
        // Any valid compression of the firing sequence is acceptable; it
        // must at least mention every actor and use a loop for c.
        assert!(text.contains('a') && text.contains('b'), "{text}");
        assert!(
            text.contains("(2 c)") || text.matches('c').count() == 1,
            "{text}"
        );
    }
}
