//! # kpn-sdf — synchronous dataflow on the KPN runtime
//!
//! The paper's introduction points at *dataflow* as the statically
//! analyzable special case of process networks (§1: "the process network
//! model, or a special case of process networks such as dataflow \[12\]").
//! In synchronous dataflow (SDF) every actor produces and consumes a
//! *fixed* number of tokens per firing, which makes three things
//! decidable that are undecidable for general KPNs (§3.5):
//!
//! 1. **consistency** — the balance equations `q[a]·prod = q[b]·cons`
//!    either have a positive integer solution (the repetition vector) or
//!    the graph provably accumulates/starves tokens;
//! 2. **deadlock** — simulating one period of the schedule either
//!    completes or proves the graph needs more initial tokens (delays);
//! 3. **exact buffer bounds** — the maximum occupancy per edge during the
//!    schedule is the channel capacity that provably suffices forever.
//!
//! [`Schedule::channel_capacities`] feeds those bounds straight into the
//! KPN runtime: an SDF graph executed through [`execute`] runs with
//! bounded channels and **zero** deadlock-monitor interventions — the
//! static counterpart of Parks' dynamic buffer growth, and the ablation
//! DESIGN.md pairs with it.

#![warn(missing_docs)]

pub mod graph;
pub mod run;
pub mod schedule;

pub use graph::{ActorId, EdgeId, SdfError, SdfGraph};
pub use run::{execute, SdfActor};
pub use schedule::{minimal_capacities, Schedule};
