//! Offline vendored subset of `crossbeam`: the `channel` module only,
//! implemented as a Mutex + Condvar MPMC queue. The workspace uses
//! bounded/unbounded channels with `send`, `recv` and `recv_timeout`;
//! both endpoints are cloneable and disconnection is reported exactly
//! like crossbeam (send to no receivers fails, recv from no senders
//! drains the queue then fails).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        /// Capacity bound; `None` for unbounded.
        cap: Option<usize>,
        /// Signalled when the queue gains an item or all senders leave.
        recv_cv: Condvar,
        /// Signalled when the queue loses an item or all receivers leave.
        send_cv: Condvar,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    fn chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            recv_cv: Condvar::new(),
            send_cv: Condvar::new(),
        });
        (
            Sender { chan: chan.clone() },
            Receiver { chan },
        )
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    /// A zero capacity is rounded up to one (the workspace never uses
    /// rendezvous channels).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        chan(Some(cap.max(1)))
    }

    /// Creates a channel of unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        chan(None)
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then enqueues. Fails when every
        /// receiver has been dropped (returning the message).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.chan.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self
                            .chan
                            .send_cv
                            .wait(st)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.chan.recv_cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.lock().senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.lock();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.chan.recv_cv.notify_all();
            }
        }
    }

    /// The receiving half; cloneable.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message; fails once the queue is empty and
        /// every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.send_cv.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .chan
                    .recv_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Like [`recv`](Self::recv), giving up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.send_cv.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _) = self
                    .chan
                    .recv_cv
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = g;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.lock();
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.chan.send_cv.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.lock().receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.lock();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.chan.send_cv.notify_all();
            }
        }
    }

    /// Returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived in time (senders may still exist).
        Timeout,
        /// The queue is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("channel is empty and disconnected")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The queue is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel is empty"),
                TryRecvError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_fifo() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_blocks_sender() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2).unwrap());
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            t.join().unwrap();
        }

        #[test]
        fn recv_timeout_distinguishes_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_to_dropped_receiver_fails() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }
    }
}
