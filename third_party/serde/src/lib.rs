//! Offline vendored subset of `serde`'s core traits.
//!
//! The build environment cannot reach a crates.io mirror, so the
//! workspace vendors the slice of serde it uses: the [`Serialize`] /
//! [`Deserialize`] traits, the [`Serializer`](ser::Serializer) /
//! [`Deserializer`](de::Deserializer) driver traits with their compound
//! access traits, and impls for the std types that cross kpn channels
//! (integers, floats, strings, `Vec`, `Option`, `Box`, tuples, maps).
//! The trait shapes match real serde so the `kpn-codec` format
//! implementation and the vendored derive compile against either.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
