//! Deserialization half: the [`Deserialize`] data trait, the
//! [`Deserializer`] format-driver trait, the [`Visitor`] callback trait,
//! and the access traits for compound values.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Errors produced by a deserializer.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A value had the right shape but wrong content.
    fn invalid_value(msg: &str) -> Self {
        Self::custom(format!("invalid value: {msg}"))
    }

    /// A compound value had the wrong number of elements.
    fn invalid_length(len: usize, expected: &str) -> Self {
        Self::custom(format!("invalid length {len}, expected {expected}"))
    }
}

/// A data structure deserializable from any serde format.
pub trait Deserialize<'de>: Sized {
    /// Drives `deserializer` to build `Self`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A stateful variant of [`Deserialize`] (serde's seed mechanism). The
/// stateless case is `PhantomData<T>`.
pub trait DeserializeSeed<'de>: Sized {
    /// The produced value.
    type Value;
    /// Drives `deserializer` using the seed's state.
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// The callbacks a [`Deserializer`] invokes with decoded values. Each
/// default rejects, so a visitor only implements the shapes it accepts.
pub trait Visitor<'de>: Sized {
    /// The value this visitor builds.
    type Value;

    /// Describes what the visitor expects, for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result;

    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(format!("unexpected bool, expected {}", Expected(&self))))
    }
    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(format!("unexpected integer, expected {}", Expected(&self))))
    }
    fn visit_i128<E: Error>(self, v: i128) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(format!("unexpected i128, expected {}", Expected(&self))))
    }
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(format!("unexpected integer, expected {}", Expected(&self))))
    }
    fn visit_u128<E: Error>(self, v: u128) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(format!("unexpected u128, expected {}", Expected(&self))))
    }
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v as f64)
    }
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(format!("unexpected float, expected {}", Expected(&self))))
    }
    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(format!("unexpected char, expected {}", Expected(&self))))
    }
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(format!("unexpected string, expected {}", Expected(&self))))
    }
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(format!("unexpected bytes, expected {}", Expected(&self))))
    }
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom(format!("unexpected none, expected {}", Expected(&self))))
    }
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(D::Error::custom(format!("unexpected some, expected {}", Expected(&self))))
    }
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom(format!("unexpected unit, expected {}", Expected(&self))))
    }
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(D::Error::custom(format!(
            "unexpected newtype struct, expected {}",
            Expected(&self)
        )))
    }
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(A::Error::custom(format!("unexpected sequence, expected {}", Expected(&self))))
    }
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(A::Error::custom(format!("unexpected map, expected {}", Expected(&self))))
    }
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        Err(A::Error::custom(format!("unexpected enum, expected {}", Expected(&self))))
    }
}

/// Adapter rendering a visitor's `expecting` through `Display`.
struct Expected<'a, V>(&'a V);

impl<'de, V: Visitor<'de>> Display for Expected<'_, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.expecting(f)
    }
}

/// A serde data format (drives a [`Visitor`] from encoded input).
pub trait Deserializer<'de>: Sized {
    /// Error type for this format.
    type Error: Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V)
        -> Result<V::Value, Self::Error>;
    fn deserialize_ignored_any<V: Visitor<'de>>(
        self,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    /// Whether the format is textual; binary formats return false.
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Access to the elements of a sequence being deserialized.
pub trait SeqAccess<'de> {
    type Error: Error;

    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the entries of a map being deserialized.
pub trait MapAccess<'de> {
    type Error: Error;

    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V)
        -> Result<V::Value, Self::Error>;

    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(k) => Ok(Some((k, self.next_value()?))),
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum being deserialized.
pub trait EnumAccess<'de>: Sized {
    type Error: Error;
    type Variant: VariantAccess<'de, Error = Self::Error>;

    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the payload of one enum variant.
pub trait VariantAccess<'de>: Sized {
    type Error: Error;

    fn unit_variant(self) -> Result<(), Self::Error>;

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Conversion of a plain value into a [`Deserializer`] (used for enum
/// variant indices).
pub trait IntoDeserializer<'de, E: Error> {
    /// The resulting deserializer.
    type Deserializer: Deserializer<'de, Error = E>;
    /// Wraps the value.
    fn into_deserializer(self) -> Self::Deserializer;
}

/// Value-wrapping deserializers.
pub mod value {
    use super::*;

    /// Deserializer over a plain `u32` (enum variant index).
    pub struct U32Deserializer<E> {
        value: u32,
        marker: PhantomData<E>,
    }

    impl<'de, E: Error> IntoDeserializer<'de, E> for u32 {
        type Deserializer = U32Deserializer<E>;
        fn into_deserializer(self) -> U32Deserializer<E> {
            U32Deserializer {
                value: self,
                marker: PhantomData,
            }
        }
    }

    macro_rules! forward_to_visit_u32 {
        ($($method:ident$(($($arg:ident: $ty:ty),*))?),* $(,)?) => {$(
            fn $method<V: Visitor<'de>>(self, $($($arg: $ty,)*)? visitor: V) -> Result<V::Value, E> {
                $($(let _ = $arg;)*)?
                visitor.visit_u32(self.value)
            }
        )*};
    }

    impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
        type Error = E;

        forward_to_visit_u32! {
            deserialize_any,
            deserialize_bool,
            deserialize_i8,
            deserialize_i16,
            deserialize_i32,
            deserialize_i64,
            deserialize_i128,
            deserialize_u8,
            deserialize_u16,
            deserialize_u32,
            deserialize_u64,
            deserialize_u128,
            deserialize_f32,
            deserialize_f64,
            deserialize_char,
            deserialize_str,
            deserialize_string,
            deserialize_bytes,
            deserialize_byte_buf,
            deserialize_option,
            deserialize_unit,
            deserialize_unit_struct(name: &'static str),
            deserialize_newtype_struct(name: &'static str),
            deserialize_seq,
            deserialize_tuple(len: usize),
            deserialize_tuple_struct(name: &'static str, len: usize),
            deserialize_map,
            deserialize_struct(name: &'static str, fields: &'static [&'static str]),
            deserialize_enum(name: &'static str, variants: &'static [&'static str]),
            deserialize_identifier,
            deserialize_ignored_any,
        }
    }
}

// ---- Deserialize impls for std types ------------------------------------

macro_rules! deserialize_primitive {
    ($($t:ty, $deserialize:ident, $visit:ident, $expect:literal;)*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct PrimitiveVisitor;
                impl<'de> Visitor<'de> for PrimitiveVisitor {
                    type Value = $t;
                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        f.write_str($expect)
                    }
                    fn $visit<E: Error>(self, v: $t) -> Result<$t, E> {
                        Ok(v)
                    }
                }
                deserializer.$deserialize(PrimitiveVisitor)
            }
        }
    )*};
}

deserialize_primitive! {
    bool, deserialize_bool, visit_bool, "a bool";
    i8, deserialize_i8, visit_i8, "an i8";
    i16, deserialize_i16, visit_i16, "an i16";
    i32, deserialize_i32, visit_i32, "an i32";
    i64, deserialize_i64, visit_i64, "an i64";
    i128, deserialize_i128, visit_i128, "an i128";
    u8, deserialize_u8, visit_u8, "a u8";
    u16, deserialize_u16, visit_u16, "a u16";
    u32, deserialize_u32, visit_u32, "a u32";
    u64, deserialize_u64, visit_u64, "a u64";
    u128, deserialize_u128, visit_u128, "a u128";
    f32, deserialize_f32, visit_f32, "an f32";
    f64, deserialize_f64, visit_f64, "an f64";
    char, deserialize_char, visit_char, "a char";
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UsizeVisitor;
        impl<'de> Visitor<'de> for UsizeVisitor {
            type Value = usize;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a usize")
            }
            fn visit_u64<E: Error>(self, v: u64) -> Result<usize, E> {
                usize::try_from(v).map_err(|_| E::custom("usize overflow"))
            }
        }
        deserializer.deserialize_u64(UsizeVisitor)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct IsizeVisitor;
        impl<'de> Visitor<'de> for IsizeVisitor {
            type Value = isize;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("an isize")
            }
            fn visit_i64<E: Error>(self, v: i64) -> Result<isize, E> {
                isize::try_from(v).map_err(|_| E::custom("isize overflow"))
            }
        }
        deserializer.deserialize_i64(IsizeVisitor)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> Visitor<'de> for UnitVisitor {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Self::Value, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct ArrayVisitor<T, const N: usize>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for ArrayVisitor<T, N> {
            type Value = [T; N];
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                write!(f, "an array of length {N}")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<[T; N], A::Error> {
                let mut out = Vec::with_capacity(N);
                for i in 0..N {
                    match seq.next_element()? {
                        Some(item) => out.push(item),
                        None => return Err(A::Error::invalid_length(i, "array")),
                    }
                }
                out.try_into()
                    .map_err(|_| A::Error::custom("array length mismatch"))
            }
        }
        deserializer.deserialize_tuple(N, ArrayVisitor::<T, N>(PhantomData))
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct BTreeMapVisitor<K, V>(PhantomData<(K, V)>);
        impl<'de, K, V> Visitor<'de> for BTreeMapVisitor<K, V>
        where
            K: Deserialize<'de> + Ord,
            V: Deserialize<'de>,
        {
            type Value = std::collections::BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeMap::new();
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(BTreeMapVisitor(PhantomData))
    }
}

impl<'de, K, V, H> Deserialize<'de> for std::collections::HashMap<K, V, H>
where
    K: Deserialize<'de> + std::hash::Hash + Eq,
    V: Deserialize<'de>,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct HashMapVisitor<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for HashMapVisitor<K, V, H>
        where
            K: Deserialize<'de> + std::hash::Hash + Eq,
            V: Deserialize<'de>,
            H: std::hash::BuildHasher + Default,
        {
            type Value = std::collections::HashMap<K, V, H>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out =
                    std::collections::HashMap::with_capacity_and_hasher(0, H::default());
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(HashMapVisitor(PhantomData))
    }
}

macro_rules! deserialize_tuple {
    ($($len:expr => ($($n:tt $t:ident)+))+) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct TupleVisitor<$($t),+>(PhantomData<($($t,)+)>);
                impl<'de, $($t: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($t),+> {
                    type Value = ($($t,)+);
                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        write!(f, "a tuple of length {}", $len)
                    }
                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        Ok(($(
                            match seq.next_element::<$t>()? {
                                Some(v) => v,
                                None => return Err(A::Error::invalid_length($n, "tuple")),
                            },
                        )+))
                    }
                }
                deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
            }
        }
    )+};
}

deserialize_tuple! {
    1 => (0 T0)
    2 => (0 T0 1 T1)
    3 => (0 T0 1 T1 2 T2)
    4 => (0 T0 1 T1 2 T2 3 T3)
    5 => (0 T0 1 T1 2 T2 3 T3 4 T4)
    6 => (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5)
    7 => (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5 6 T6)
    8 => (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5 6 T6 7 T7)
}
