//! Serialization half: the [`Serialize`] data trait, the [`Serializer`]
//! format-driver trait, and the seven compound-value traits.

use std::fmt::Display;

/// A data structure that can be serialized into any serde format.
pub trait Serialize {
    /// Serializes `self` by describing its shape to `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Errors produced by a serializer.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A serde data format (the "visitor" driven by [`Serialize`] impls).
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type for this format.
    type Error: Error;
    /// State for serializing sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// State for serializing tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// State for serializing tuple structs.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// State for serializing tuple enum variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// State for serializing maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// State for serializing structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// State for serializing struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_i128(self, v: i128) -> Result<Self::Ok, Self::Error>;
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u128(self, v: u128) -> Result<Self::Ok, Self::Error>;
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;

    /// Whether the format is textual; binary formats return false.
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Sequence serialization state.
pub trait SerializeSeq {
    type Ok;
    type Error: Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T)
        -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple serialization state.
pub trait SerializeTuple {
    type Ok;
    type Error: Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T)
        -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple-struct serialization state.
pub trait SerializeTupleStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple-variant serialization state.
pub trait SerializeTupleVariant {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Map serialization state.
pub trait SerializeMap {
    type Ok;
    type Error: Error;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct serialization state.
pub trait SerializeStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct-variant serialization state.
pub trait SerializeStructVariant {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---- Serialize impls for std types -------------------------------------

macro_rules! serialize_primitive {
    ($($t:ty => $method:ident),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        }
    )*};
}

serialize_primitive! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    i128 => serialize_i128,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    u128 => serialize_u128,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // serde treats arrays as tuples (fixed length known from the type).
        let mut tup = serializer.serialize_tuple(N)?;
        for item in self {
            tup.serialize_element(item)?;
        }
        tup.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_key(k)?;
            map.serialize_value(v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_key(k)?;
            map.serialize_value(v)?;
        }
        map.end()
    }
}

macro_rules! serialize_tuple {
    ($($len:expr => ($($n:tt $t:ident)+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tup = serializer.serialize_tuple($len)?;
                $(tup.serialize_element(&self.$n)?;)+
                tup.end()
            }
        }
    )+};
}

serialize_tuple! {
    1 => (0 T0)
    2 => (0 T0 1 T1)
    3 => (0 T0 1 T1 2 T2)
    4 => (0 T0 1 T1 2 T2 3 T3)
    5 => (0 T0 1 T1 2 T2 3 T3 4 T4)
    6 => (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5)
    7 => (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5 6 T6)
    8 => (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5 6 T6 7 T7)
}
