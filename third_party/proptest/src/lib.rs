//! Offline vendored subset of `proptest`.
//!
//! The build environment has no crates.io mirror, so the workspace vendors
//! the slice of proptest it uses: the [`proptest!`] macro family,
//! [`Strategy`] with `prop_map` / `prop_filter` / `prop_recursive` /
//! `boxed`, range and tuple strategies, `any::<T>()`,
//! [`collection::vec`], [`option::of`], regex-literal string strategies
//! (character class + quantifier subset), and [`prop_oneof!`].
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its inputs as generated), and case generation is deterministic per
//! (file, test name, case index) rather than OS-entropy seeded. Both are
//! acceptable for this workspace's CI-style usage and make failures
//! reproducible by construction.

use std::fmt;
use std::sync::Arc;

// ---- deterministic RNG --------------------------------------------------

/// SplitMix64 stream used to drive generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from raw state.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seeds deterministically for one test case.
    pub fn for_case(test_id: &str, case: u32) -> Self {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        test_id.hash(&mut h);
        case.hash(&mut h);
        TestRng { state: h.finish() }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---- Strategy core ------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type; `Debug` so failures can print their inputs.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing `pred` (regenerating instead of
    /// shrinking; gives up after a large number of rejections).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Builds recursive values: each level draws either the base
    /// strategy or one application of `recurse` to the previous level.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            let rec = recurse(level).boxed();
            let leaf = base.clone();
            level = BoxedStrategy(Arc::new(move |rng: &mut TestRng| {
                if rng.below(4) == 0 {
                    leaf.generate(rng)
                } else {
                    rec.generate(rng)
                }
            }));
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A cloneable type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..100_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected every candidate: {}", self.reason);
    }
}

/// Uniform choice between type-erased alternatives (see [`prop_oneof!`]).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof of zero strategies");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

// ---- primitive strategies ----------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let span = (<$t>::MAX as i128 - lo + 1) as u128;
                let off = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.below(span as u64) as u128
                };
                (lo + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

/// Types with a default "anything" strategy (see [`any`]).
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Bias toward ASCII, occasionally any scalar value.
        if rng.below(4) != 0 {
            (0x20 + rng.below(0x5F) as u32) as u8 as char
        } else {
            loop {
                if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                    return c;
                }
            }
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Any finite bit pattern: NaN/inf are excluded so equality-based
        // roundtrip properties remain meaningful.
        loop {
            let v = f64::from_bits(rng.next_u64());
            if v.is_finite() {
                return v;
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        loop {
            let v = f32::from_bits(rng.next_u64() as u32);
            if v.is_finite() {
                return v;
            }
        }
    }
}

/// The unconstrained strategy for `T` (`any::<u8>()` style).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($($len:expr => ($($n:tt $t:ident)+))+) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    1 => (0 T0)
    2 => (0 T0 1 T1)
    3 => (0 T0 1 T1 2 T2)
    4 => (0 T0 1 T1 2 T2 3 T3)
    5 => (0 T0 1 T1 2 T2 3 T3 4 T4)
    6 => (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5)
}

// ---- regex-literal string strategies ------------------------------------

/// One pattern atom: a set of drawable chars plus repetition bounds.
struct Atom {
    /// Inclusive char ranges.
    ranges: Vec<(u32, u32)>,
    min: u32,
    max: u32,
}

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let mut ranges = Vec::new();
        match chars[i] {
            '.' => {
                ranges.push((0x20, 0x7E));
                i += 1;
            }
            '[' => {
                i += 1;
                if i < chars.len() && chars[i] == '^' {
                    panic!("vendored proptest: negated char classes unsupported in {pat:?}");
                }
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    i += 1;
                    if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                        let hi = chars[i + 1];
                        i += 2;
                        ranges.push((lo as u32, hi as u32));
                    } else {
                        ranges.push((lo as u32, lo as u32));
                    }
                }
                if i >= chars.len() {
                    panic!("vendored proptest: unterminated char class in {pat:?}");
                }
                i += 1; // ']'
            }
            '\\' => {
                i += 1;
                let c = chars[i];
                i += 1;
                ranges.push((c as u32, c as u32));
            }
            c => {
                ranges.push((c as u32, c as u32));
                i += 1;
            }
        }
        // Quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| {
                            panic!("vendored proptest: unterminated quantifier in {pat:?}")
                        });
                    let spec: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match spec.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().unwrap_or(0),
                            n.trim().parse().unwrap_or_else(|_| {
                                panic!("vendored proptest: open-ended {{m,}} unsupported in {pat:?}")
                            }),
                        ),
                        None => {
                            let n: u32 = spec.trim().parse().unwrap_or_else(|_| {
                                panic!("vendored proptest: bad quantifier in {pat:?}")
                            });
                            (n, n)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom { ranges, min, max });
    }
    atoms
}

fn sample_pattern(pat: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in parse_pattern(pat) {
        let count = atom.min + rng.below((atom.max - atom.min + 1) as u64) as u32;
        let total: u64 = atom
            .ranges
            .iter()
            .map(|&(lo, hi)| (hi - lo + 1) as u64)
            .sum();
        for _ in 0..count {
            let mut pick = rng.below(total.max(1));
            for &(lo, hi) in &atom.ranges {
                let span = (hi - lo + 1) as u64;
                if pick < span {
                    out.push(char::from_u32(lo + pick as u32).unwrap_or('?'));
                    break;
                }
                pick -= span;
            }
        }
    }
    out
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

// ---- collection / option modules ----------------------------------------

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt;

    /// Vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// `None` about a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---- runner plumbing -----------------------------------------------------

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property is false for these inputs.
    Fail(String),
    /// The inputs were rejected by `prop_assume!` — skip, don't fail.
    Reject(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Prints the failing case's inputs if the test body panics.
pub struct PanicContext {
    /// Pre-rendered debug of the generated inputs.
    pub inputs: String,
    /// Case index, for reproduction.
    pub case: u32,
}

impl Drop for PanicContext {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: panic in case {} with inputs: {}",
                self.case, self.inputs
            );
        }
    }
}

// ---- macros --------------------------------------------------------------

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $(let $arg = $strat;)*
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    ::std::concat!(::std::file!(), "::", ::std::stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::generate(&$arg, &mut __rng);)*
                let __inputs = ::std::format!(
                    ::std::concat!("(", $(::std::stringify!($arg), " = {:?}, ",)* ")"),
                    $(&$arg),*
                );
                let __guard = $crate::PanicContext {
                    inputs: __inputs.clone(),
                    case: __case,
                };
                let __result = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                ::std::mem::drop(__guard);
                match __result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        ::std::panic!(
                            "proptest case {} failed: {}\ninputs: {}",
                            __case, __msg, __inputs
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// `assert!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::TestCaseError::Fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{:?}` == `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(*__left == *__right, $($fmt)+);
    }};
}

/// `assert_ne!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `{:?}` != `{:?}`",
            __left,
            __right
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(::std::vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The usual imports (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_sampler_matches_shape() {
        let mut rng = super::TestRng::from_seed(5);
        for _ in 0..100 {
            let s = super::sample_pattern("[a-zA-Z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()), "bad length: {s:?}");
            assert!(s.chars().all(|c| c.is_ascii_alphabetic()), "bad char: {s:?}");
            let t = super::sample_pattern(".{0,16}", &mut rng);
            assert!(t.chars().count() <= 16);
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = super::TestRng::from_seed(9);
        for _ in 0..1000 {
            let v = Strategy::generate(&(-7i64..8), &mut rng);
            assert!((-7..8).contains(&v));
            let u = Strategy::generate(&(0.25f64..4.0), &mut rng);
            assert!((0.25..4.0).contains(&u));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vectors_respect_size(v in crate::collection::vec(any::<u8>(), 0..17)) {
            prop_assert!(v.len() < 17);
        }

        #[test]
        fn oneof_and_filter_compose(
            v in prop_oneof![
                (1i64..10).prop_filter("nonzero", |x| *x != 0),
                (20i64..30),
            ],
            opt in crate::option::of(".{0,4}"),
        ) {
            prop_assert!((1..10).contains(&v) || (20..30).contains(&v));
            if let Some(s) = opt {
                prop_assert!(s.chars().count() <= 4);
            }
        }
    }
}
