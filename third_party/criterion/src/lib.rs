//! Offline vendored subset of `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`
//! and `iter_custom`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! timing loop instead of criterion's statistical machinery. Each
//! benchmark runs a short calibrated loop and prints mean ns/iter; there
//! is no outlier analysis, HTML report, or saved baseline. Good enough
//! for `cargo bench --no-run` CI legs and for coarse local comparisons.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark harness entry point.
pub struct Criterion {
    /// Target number of timed samples per benchmark.
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Applies CLI-style configuration; accepted for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, self.sample_size, f);
        self
    }
}

/// A named collection of benchmarks with shared configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the input size per iteration; accepted for API
    /// compatibility (no per-byte/per-element rates are reported).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Warm-up budget; accepted for API compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Measurement budget; accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(&label, self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: IntoBenchmarkId, P: ?Sized, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark identifier (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Renders the identifier.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Declared per-iteration workload size; retained for API compatibility.
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration, recorded by `iter`/`iter_custom`.
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, calibrating the iteration count so each sample
    /// takes a measurable amount of time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until one batch takes >= 1 ms or we
        // hit a cap, so per-iteration timing noise stays bounded.
        let mut batch: u64 = 1;
        let batch_floor = Duration::from_millis(1);
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            if start.elapsed() >= batch_floor || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    }

    /// Times with a caller-controlled loop: `routine` receives the
    /// iteration count and returns the elapsed time it measured.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let per_sample: u64 = 8;
        for _ in 0..self.samples {
            total += routine(per_sample);
            iters += per_sample;
        }
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Keep vendored bench runs quick: a handful of samples is enough for
    // the coarse comparisons this stub supports.
    let mut bencher = Bencher {
        samples: sample_size.min(10),
        mean_ns: 0.0,
    };
    f(&mut bencher);
    eprintln!("bench {label}: {:.1} ns/iter", bencher.mean_ns);
}

/// Declares a benchmark group callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups; tolerates the harness CLI
/// arguments cargo passes (`--bench`, filters) by ignoring them.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| b.iter(|| (0..4u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function(BenchmarkId::new("custom", 7), |b| {
            b.iter_custom(|iters| {
                let start = std::time::Instant::now();
                for _ in 0..iters {
                    black_box(1 + 1);
                }
                start.elapsed()
            })
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        criterion_group!(benches, trivial);
        benches();
    }
}
