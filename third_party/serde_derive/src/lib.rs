//! Offline vendored `Serialize`/`Deserialize` derive.
//!
//! The build environment has no crates.io mirror, so this derive is
//! hand-rolled on top of `proc_macro` alone (no `syn`/`quote`). It
//! supports exactly what the workspace uses: non-generic structs (named,
//! tuple, unit) and non-generic enums whose variants are unit, tuple, or
//! struct shaped, with externally-indexed variants matching real serde's
//! `variant_index` convention. `#[serde(...)]` attributes are accepted
//! and ignored — the kpn-codec wire format is positional, so `default`
//! renaming/skipping hints have no effect on it.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields (count only — types are never needed).
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Input {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

// ---- token-stream parsing ----------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skips `#[...]` attribute sequences (including doc comments).
    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    self.pos += 1;
                }
                _ => panic!("serde_derive: malformed attribute"),
            }
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected identifier, found {other:?}"),
        }
    }

    /// Consumes type tokens until a `,` at angle-bracket depth zero (the
    /// comma is consumed too) or the end of the stream. Delimited groups
    /// are single tokens, so only `<`/`>` need depth tracking.
    fn skip_type(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        self.pos += 1;
                        return;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut cur = Cursor::new(stream);
    let mut names = Vec::new();
    while cur.peek().is_some() {
        cur.skip_attributes();
        cur.skip_visibility();
        if cur.peek().is_none() {
            break;
        }
        names.push(cur.expect_ident());
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field name, found {other:?}"),
        }
        cur.skip_type();
    }
    names
}

fn parse_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    let mut count = 0;
    while cur.peek().is_some() {
        cur.skip_attributes();
        cur.skip_visibility();
        if cur.peek().is_none() {
            break;
        }
        count += 1;
        cur.skip_type();
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while cur.peek().is_some() {
        cur.skip_attributes();
        if cur.peek().is_none() {
            break;
        }
        let name = cur.expect_ident();
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(parse_tuple_fields(g.stream()));
                cur.pos += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                cur.pos += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Consume up to and including the trailing comma (also skips
        // explicit discriminants, which the workspace does not use).
        while let Some(t) = cur.next() {
            if let TokenTree::Punct(p) = t {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut cur = Cursor::new(input);
    cur.skip_attributes();
    cur.skip_visibility();
    let kind = cur.expect_ident();
    let name = cur.expect_ident();
    if let Some(TokenTree::Punct(p)) = cur.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match cur.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(parse_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unexpected struct body {other:?}"),
            };
            Input::Struct { name, fields }
        }
        "enum" => {
            let variants = match cur.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("serde_derive: unexpected enum body {other:?}"),
            };
            Input::Enum { name, variants }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

// ---- code generation ----------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let src = match parse_input(input) {
        Input::Struct { name, fields } => serialize_struct(&name, &fields),
        Input::Enum { name, variants } => serialize_enum(&name, &variants),
    };
    src.parse().expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let src = match parse_input(input) {
        Input::Struct { name, fields } => deserialize_struct(&name, &fields),
        Input::Enum { name, variants } => deserialize_enum(&name, &variants),
    };
    src.parse().expect("serde_derive: generated invalid Deserialize impl")
}

fn serialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let mut s = format!(
                "let mut __state = serde::Serializer::serialize_struct(__serializer, \"{name}\", {}usize)?;\n",
                names.len()
            );
            for f in names {
                s += &format!(
                    "serde::ser::SerializeStruct::serialize_field(&mut __state, \"{f}\", &self.{f})?;\n"
                );
            }
            s += "serde::ser::SerializeStruct::end(__state)";
            s
        }
        Fields::Tuple(1) => format!(
            "serde::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)"
        ),
        Fields::Tuple(n) => {
            let mut s = format!(
                "let mut __state = serde::Serializer::serialize_tuple_struct(__serializer, \"{name}\", {n}usize)?;\n"
            );
            for i in 0..*n {
                s += &format!(
                    "serde::ser::SerializeTupleStruct::serialize_field(&mut __state, &self.{i})?;\n"
                );
            }
            s += "serde::ser::SerializeTupleStruct::end(__state)";
            s
        }
        Fields::Unit => {
            format!("serde::Serializer::serialize_unit_struct(__serializer, \"{name}\")")
        }
    };
    wrap_serialize(name, &body)
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for (idx, v) in variants.iter().enumerate() {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit => {
                arms += &format!(
                    "{name}::{vname} => serde::Serializer::serialize_unit_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
                );
            }
            Fields::Tuple(1) => {
                arms += &format!(
                    "{name}::{vname}(__f0) => serde::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", __f0),\n"
                );
            }
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let mut arm = format!("{name}::{vname}({}) => {{\n", binds.join(", "));
                arm += &format!(
                    "let mut __state = serde::Serializer::serialize_tuple_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", {n}usize)?;\n"
                );
                for b in &binds {
                    arm += &format!(
                        "serde::ser::SerializeTupleVariant::serialize_field(&mut __state, {b})?;\n"
                    );
                }
                arm += "serde::ser::SerializeTupleVariant::end(__state)\n}\n";
                arms += &arm;
            }
            Fields::Named(fields) => {
                let mut arm = format!("{name}::{vname} {{ {} }} => {{\n", fields.join(", "));
                arm += &format!(
                    "let mut __state = serde::Serializer::serialize_struct_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", {}usize)?;\n",
                    fields.len()
                );
                for f in fields {
                    arm += &format!(
                        "serde::ser::SerializeStructVariant::serialize_field(&mut __state, \"{f}\", {f})?;\n"
                    );
                }
                arm += "serde::ser::SerializeStructVariant::end(__state)\n}\n";
                arms += &arm;
            }
        }
    }
    wrap_serialize(name, &format!("match self {{\n{arms}}}"))
}

fn wrap_serialize(name: &str, body: &str) -> String {
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn serialize<__S: serde::Serializer>(&self, __serializer: __S) \
         -> ::std::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}\n"
    )
}

/// Generates `let __fieldN = ...;` bindings that pull each field out of a
/// positional sequence, erroring on early end.
fn seq_field_bindings(count: usize, what: &str) -> String {
    let mut s = String::new();
    for i in 0..count {
        s += &format!(
            "let __field{i} = match serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
             ::std::option::Option::Some(__v) => __v,\n\
             ::std::option::Option::None => return ::std::result::Result::Err(\
             serde::de::Error::custom(\"{what}: missing element {i}\")),\n}};\n"
        );
    }
    s
}

/// A visitor item (named `visitor_name`) whose `visit_seq` builds
/// `construct` out of `count` positional fields.
fn seq_visitor(visitor_name: &str, value_ty: &str, count: usize, construct: &str, what: &str) -> String {
    format!(
        "struct {visitor_name};\n\
         impl<'de> serde::de::Visitor<'de> for {visitor_name} {{\n\
         type Value = {value_ty};\n\
         fn expecting(&self, __f: &mut ::std::fmt::Formatter) -> ::std::fmt::Result {{\n\
         __f.write_str(\"{what}\")\n}}\n\
         fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
         -> ::std::result::Result<Self::Value, __A::Error> {{\n\
         {bindings}\
         ::std::result::Result::Ok({construct})\n}}\n}}\n",
        bindings = seq_field_bindings(count, what),
    )
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let construct = format!(
                "{name} {{ {} }}",
                names
                    .iter()
                    .enumerate()
                    .map(|(i, f)| format!("{f}: __field{i}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let field_list = names
                .iter()
                .map(|f| format!("\"{f}\""))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{visitor}\
                 serde::Deserializer::deserialize_struct(__deserializer, \"{name}\", &[{field_list}], __Visitor)",
                visitor = seq_visitor("__Visitor", name, names.len(), &construct, &format!("struct {name}")),
            )
        }
        Fields::Tuple(1) => format!(
            "struct __Visitor;\n\
             impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
             type Value = {name};\n\
             fn expecting(&self, __f: &mut ::std::fmt::Formatter) -> ::std::fmt::Result {{\n\
             __f.write_str(\"newtype struct {name}\")\n}}\n\
             fn visit_newtype_struct<__D: serde::Deserializer<'de>>(self, __d: __D) \
             -> ::std::result::Result<Self::Value, __D::Error> {{\n\
             ::std::result::Result::Ok({name}(serde::de::Deserialize::deserialize(__d)?))\n}}\n}}\n\
             serde::Deserializer::deserialize_newtype_struct(__deserializer, \"{name}\", __Visitor)"
        ),
        Fields::Tuple(n) => {
            let construct = format!(
                "{name}({})",
                (0..*n)
                    .map(|i| format!("__field{i}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            format!(
                "{visitor}\
                 serde::Deserializer::deserialize_tuple_struct(__deserializer, \"{name}\", {n}usize, __Visitor)",
                visitor = seq_visitor("__Visitor", name, *n, &construct, &format!("tuple struct {name}")),
            )
        }
        Fields::Unit => format!(
            "struct __Visitor;\n\
             impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
             type Value = {name};\n\
             fn expecting(&self, __f: &mut ::std::fmt::Formatter) -> ::std::fmt::Result {{\n\
             __f.write_str(\"unit struct {name}\")\n}}\n\
             fn visit_unit<__E: serde::de::Error>(self) -> ::std::result::Result<Self::Value, __E> {{\n\
             ::std::result::Result::Ok({name})\n}}\n}}\n\
             serde::Deserializer::deserialize_unit_struct(__deserializer, \"{name}\", __Visitor)"
        ),
    };
    wrap_deserialize(name, &body)
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let variant_list = variants
        .iter()
        .map(|v| format!("\"{}\"", v.name))
        .collect::<Vec<_>>()
        .join(", ");
    let mut inner_visitors = String::new();
    let mut arms = String::new();
    for (idx, v) in variants.iter().enumerate() {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit => {
                arms += &format!(
                    "{idx}u32 => {{\nserde::de::VariantAccess::unit_variant(__variant)?;\n\
                     ::std::result::Result::Ok({name}::{vname})\n}}\n"
                );
            }
            Fields::Tuple(1) => {
                arms += &format!(
                    "{idx}u32 => ::std::result::Result::Ok({name}::{vname}(\
                     serde::de::VariantAccess::newtype_variant(__variant)?)),\n"
                );
            }
            Fields::Tuple(n) => {
                let visitor_name = format!("__Variant{idx}Visitor");
                let construct = format!(
                    "{name}::{vname}({})",
                    (0..*n)
                        .map(|i| format!("__field{i}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                inner_visitors += &seq_visitor(
                    &visitor_name,
                    name,
                    *n,
                    &construct,
                    &format!("tuple variant {name}::{vname}"),
                );
                arms += &format!(
                    "{idx}u32 => serde::de::VariantAccess::tuple_variant(__variant, {n}usize, {visitor_name}),\n"
                );
            }
            Fields::Named(fields) => {
                let visitor_name = format!("__Variant{idx}Visitor");
                let construct = format!(
                    "{name}::{vname} {{ {} }}",
                    fields
                        .iter()
                        .enumerate()
                        .map(|(i, f)| format!("{f}: __field{i}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                let field_list = fields
                    .iter()
                    .map(|f| format!("\"{f}\""))
                    .collect::<Vec<_>>()
                    .join(", ");
                inner_visitors += &seq_visitor(
                    &visitor_name,
                    name,
                    fields.len(),
                    &construct,
                    &format!("struct variant {name}::{vname}"),
                );
                arms += &format!(
                    "{idx}u32 => serde::de::VariantAccess::struct_variant(__variant, &[{field_list}], {visitor_name}),\n"
                );
            }
        }
    }
    let body = format!(
        "struct __Visitor;\n\
         impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
         type Value = {name};\n\
         fn expecting(&self, __f: &mut ::std::fmt::Formatter) -> ::std::fmt::Result {{\n\
         __f.write_str(\"enum {name}\")\n}}\n\
         fn visit_enum<__A: serde::de::EnumAccess<'de>>(self, __data: __A) \
         -> ::std::result::Result<Self::Value, __A::Error> {{\n\
         {inner_visitors}\
         let (__idx, __variant) = serde::de::EnumAccess::variant::<u32>(__data)?;\n\
         match __idx {{\n{arms}\
         _ => ::std::result::Result::Err(serde::de::Error::custom(\
         \"invalid variant index for enum {name}\")),\n}}\n}}\n}}\n\
         serde::Deserializer::deserialize_enum(__deserializer, \"{name}\", &[{variant_list}], __Visitor)"
    );
    wrap_deserialize(name, &body)
}

fn wrap_deserialize(name: &str, body: &str) -> String {
    format!(
        "impl<'de> serde::de::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) \
         -> ::std::result::Result<Self, __D::Error> {{\n{body}\n}}\n}}\n"
    )
}
