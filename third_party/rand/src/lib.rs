//! Offline vendored subset of `rand` 0.9: the [`Rng`]/[`SeedableRng`]
//! traits, [`rngs::StdRng`], and the [`random`] free function. The
//! generator is SplitMix64-seeded xoshiro256++ — not cryptographic, but
//! statistically solid, which is all the workspace needs (Miller–Rabin
//! witnesses, jitter, tokens, seeded property tests).

/// A source of randomness.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a [`Standard`]-distributed type.
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Samples uniformly from `[0, bound)`; `bound` must be non-zero.
    fn random_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "random_below bound must be non-zero");
        // Rejection sampling over the widest multiple of `bound`.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// Types samplable from uniform random bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        u128::from_rng(rng) as i128
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Samples one value from a per-thread generator seeded from the clock,
/// the thread, and a counter — distinct across calls and threads.
pub fn random<T: Standard>() -> T {
    use std::cell::RefCell;
    thread_local! {
        static THREAD_RNG: RefCell<rngs::StdRng> = RefCell::new({
            use std::hash::{Hash, Hasher};
            static COUNTER: std::sync::atomic::AtomicU64 =
                std::sync::atomic::AtomicU64::new(0);
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap_or_default()
                .subsec_nanos()
                .hash(&mut h);
            std::time::Instant::now().hash(&mut h);
            std::thread::current().id().hash(&mut h);
            COUNTER
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                .hash(&mut h);
            SeedableRng::seed_from_u64(h.finish())
        });
    }
    THREAD_RNG.with(|rng| rng.borrow_mut().random())
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{random, Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn random_below_respects_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(rng.random_below(13) < 13);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn free_random_varies() {
        let a: u64 = random();
        let b: u64 = random();
        // Colliding twice in a row from a 64-bit stream is astronomically
        // unlikely; treat as a smoke check rather than a proof.
        assert_ne!(a, b);
    }
}
