//! Offline vendored subset of the `parking_lot` API, backed by `std::sync`.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the small slice of parking_lot it actually uses:
//! [`Mutex`], [`MutexGuard`], [`Condvar`] and [`WaitTimeoutResult`].
//! Semantics follow parking_lot, not std: lock poisoning does not exist —
//! a panic while holding a guard simply unlocks, and later lockers see the
//! value as-is. This matters for the executor, whose workers may unwind
//! through process panics while the pool keeps running.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock without poisoning.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + std::fmt::Display> std::fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(&**self, f)
    }
}

/// A condition variable paired with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's wait consumes the guard; swap it through by value. Nothing
        // between the read and the write can panic (poisoning is absorbed).
        unsafe {
            let inner = std::ptr::read(&guard.inner);
            let inner = self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(&mut guard.inner, inner);
        }
    }

    /// Blocks until notified or the timeout elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        unsafe {
            let inner = std::ptr::read(&guard.inner);
            let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
                Ok((g, r)) => (g, r),
                Err(p) => p.into_inner(),
            };
            std::ptr::write(&mut guard.inner, inner);
            WaitTimeoutResult {
                timed_out: result.timed_out(),
            }
        }
    }

    /// Blocks until notified or the deadline passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: std::time::Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(std::time::Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

/// Whether a [`Condvar::wait_for`] returned because of a timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn notify_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                cv2.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
