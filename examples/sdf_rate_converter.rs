//! Synchronous dataflow: a multirate sample-rate converter scheduled
//! statically and executed on the KPN runtime.
//!
//! The paper (§1) treats dataflow as the analyzable special case of
//! process networks. This example shows what the analysis buys: the 2:3
//! then 7:5 rate-conversion chain gets a repetition vector, a periodic
//! schedule, and *exact* channel capacities — and then runs on the same
//! channels and threads as every other example, with the deadlock monitor
//! confirming that the static bounds were never exceeded (zero growths).
//!
//! ```text
//! cargo run --example sdf_rate_converter
//! ```

use kpn::core::Result;
use kpn::sdf::{execute, Schedule, SdfActor, SdfGraph};
use std::sync::{Arc, Mutex};

fn main() -> Result<()> {
    // src produces 2 samples per firing; `up` consumes 3 and produces 7
    // (fractional upsampling); `down` consumes 5 and produces 1 (decimated
    // measurement); sink consumes 1.
    let mut g = SdfGraph::new();
    let src = g.actor("src");
    let up = g.actor("up(3:7)");
    let down = g.actor("down(5:1)");
    let sink = g.actor("sink");
    g.edge(src, up, 2, 3);
    g.edge(up, down, 7, 5);
    g.edge(down, sink, 1, 1);

    let q = g.repetition_vector().expect("consistent graph");
    println!("repetition vector:");
    for (&actor, count) in [src, up, down, sink].iter().zip(&q) {
        println!("  {:<10} fires {count}x per period", g.name(actor));
    }
    let schedule = Schedule::build(&g).expect("schedulable");
    println!(
        "schedule ({} firings/period): {}",
        schedule.period_length(),
        schedule.looped(&g)
    );
    println!(
        "exact channel bounds (tokens): {:?}\n",
        schedule.channel_capacities()
    );

    let results = Arc::new(Mutex::new(Vec::new()));
    let out = results.clone();
    let mut t = 0i64;
    let report = execute(
        &g,
        &schedule,
        vec![
            SdfActor::new(src, move |_ins, outs| {
                outs[0].push(t);
                outs[0].push(t + 1);
                t += 2;
                Ok(())
            }),
            SdfActor::new(up, |ins, outs| {
                // Linear-ish interpolation: repeat samples 7/3.
                for k in 0..7 {
                    outs[0].push(ins[0][(k * 3 / 7) as usize]);
                }
                Ok(())
            }),
            SdfActor::new(down, |ins, outs| {
                outs[0].push(ins[0].iter().sum::<i64>() / 5);
                Ok(())
            }),
            SdfActor::new(sink, move |ins, _| {
                out.lock().unwrap().push(ins[0][0]);
                Ok(())
            }),
        ],
        6, // periods
    )?;

    let results = results.lock().unwrap();
    println!(
        "decimated output ({} values): {:?}",
        results.len(),
        &results[..]
    );
    println!(
        "\nmonitor growths: {} (static SDF bounds provably sufficed)",
        report.monitor.growths
    );
    assert_eq!(report.monitor.growths, 0);
    Ok(())
}
