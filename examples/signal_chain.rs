//! A signal-processing chain — the application domain the paper's
//! introduction motivates ("process networks ... are well suited to a
//! variety of signal processing and scientific computation applications").
//!
//! Custom `Iterative` processes on typed `f64` streams:
//!
//! ```text
//! NoisySine ──► FirFilter (low-pass) ──► Decimate(4) ──► RmsMeter ──► print
//! ```
//!
//! The graph is conceptually infinite (a live signal); it terminates via
//! the §3.4 cascade when the RMS meter hits its window limit.
//!
//! ```text
//! cargo run --example signal_chain
//! ```

use kpn::core::{
    ChannelReader, ChannelWriter, DataReader, DataWriter, Iterative, Network, ProcessCtx, Result,
};

/// A sine wave with deterministic pseudo-noise (no RNG dependency: a tiny
/// LCG keeps the run reproducible).
struct NoisySine {
    out: DataWriter,
    t: u64,
    lcg: u64,
}

impl NoisySine {
    fn new(out: ChannelWriter) -> Self {
        NoisySine {
            out: DataWriter::new(out),
            t: 0,
            lcg: 0x2545F4914F6CDD1D,
        }
    }
}

impl Iterative for NoisySine {
    fn name(&self) -> String {
        "NoisySine".into()
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        self.lcg = self
            .lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let noise = ((self.lcg >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
        let signal = (self.t as f64 * 0.05).sin();
        self.t += 1;
        self.out.write_f64(signal + 0.3 * noise)
    }
}

/// A moving-average FIR low-pass filter of order `taps`.
struct FirFilter {
    input: DataReader,
    out: DataWriter,
    window: Vec<f64>,
    pos: usize,
    filled: usize,
}

impl FirFilter {
    fn new(taps: usize, input: ChannelReader, out: ChannelWriter) -> Self {
        FirFilter {
            input: DataReader::new(input),
            out: DataWriter::new(out),
            window: vec![0.0; taps],
            pos: 0,
            filled: 0,
        }
    }
}

impl Iterative for FirFilter {
    fn name(&self) -> String {
        format!("FirFilter({})", self.window.len())
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let sample = self.input.read_f64()?;
        self.window[self.pos] = sample;
        self.pos = (self.pos + 1) % self.window.len();
        self.filled = (self.filled + 1).min(self.window.len());
        let sum: f64 = self.window[..self.filled].iter().sum();
        self.out.write_f64(sum / self.filled as f64)
    }
}

/// Keeps one sample in `factor`, discarding the rest.
struct Decimate {
    input: DataReader,
    out: DataWriter,
    factor: usize,
}

impl Decimate {
    fn new(factor: usize, input: ChannelReader, out: ChannelWriter) -> Self {
        assert!(factor >= 1);
        Decimate {
            input: DataReader::new(input),
            out: DataWriter::new(out),
            factor,
        }
    }
}

impl Iterative for Decimate {
    fn name(&self) -> String {
        format!("Decimate({})", self.factor)
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let keep = self.input.read_f64()?;
        for _ in 1..self.factor {
            self.input.read_f64()?;
        }
        self.out.write_f64(keep)
    }
}

/// Prints the RMS of consecutive windows; stops after `windows` of them,
/// which tears the whole (conceptually infinite) chain down gracefully.
struct RmsMeter {
    input: DataReader,
    window: usize,
    windows: u64,
}

impl Iterative for RmsMeter {
    fn name(&self) -> String {
        "RmsMeter".into()
    }
    fn limit(&self) -> Option<u64> {
        Some(self.windows)
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let mut acc = 0.0;
        for _ in 0..self.window {
            let v = self.input.read_f64()?;
            acc += v * v;
        }
        println!("rms: {:.4}", (acc / self.window as f64).sqrt());
        Ok(())
    }
}

fn main() -> Result<()> {
    let net = Network::new();
    let (raw_w, raw_r) = net.channel();
    let (filt_w, filt_r) = net.channel();
    let (dec_w, dec_r) = net.channel();

    net.add(NoisySine::new(raw_w));
    net.add(FirFilter::new(16, raw_r, filt_w));
    net.add(Decimate::new(4, filt_r, dec_w));
    net.add(RmsMeter {
        input: DataReader::new(dec_r),
        window: 64,
        windows: 12,
    });

    let report = net.run()?;
    println!(
        "chain terminated after the meter's window limit ({} processes)",
        report.processes_run
    );
    Ok(())
}
