//! The parallel factorization application of §5.2: brute-force search for
//! the factor of a "weak" RSA modulus `N = P·(P+D)` using real bignum
//! arithmetic, parallel workers, and dynamic (or static) load balancing.
//!
//! The producer splits the difference search space into tasks of 32 even
//! values (the paper's batch size); each worker task tests its range; the
//! consumer stops the whole network the moment a factor is found — the
//! graceful termination cascade then unwinds every process.
//!
//! Defaults use a 192-bit prime so the demo finishes in seconds; the
//! paper's experiment (512-bit P, 2048 tasks) is `--bits 512 --tasks 2048`.
//!
//! ```text
//! cargo run --release --example factor [-- --bits 192 --tasks 64 --workers 4 --static]
//! ```

use kpn::bignum::{make_weak_key, BigUint, SearchOutcome};
use kpn::core::{Network, Result};
use kpn::parallel::{
    factor_task_stream, meta_dynamic, meta_static, register_stock_tasks, Consumer, Producer,
    TaskEnvelope, TaskTypeRegistry,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex};
use std::time::Instant;

struct Args {
    bits: u64,
    tasks: u64,
    workers: usize,
    dynamic: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        bits: 192,
        tasks: 64,
        workers: 4,
        dynamic: true,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--bits" => {
                args.bits = argv[i + 1].parse().expect("--bits N");
                i += 2;
            }
            "--tasks" => {
                args.tasks = argv[i + 1].parse().expect("--tasks N");
                i += 2;
            }
            "--workers" => {
                args.workers = argv[i + 1].parse().expect("--workers N");
                i += 2;
            }
            "--static" => {
                args.dynamic = false;
                i += 1;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

const BATCH: u64 = 32; // differences per task, as in the paper

fn main() -> Result<()> {
    let args = parse_args();
    let mut rng = StdRng::seed_from_u64(0x5EED);

    // Plant the factor so it is found in the last quarter of the task
    // range — plenty of work for every worker first.
    let target_task = args.tasks * 3 / 4;
    let d = target_task * 2 * BATCH + 2 * (BATCH / 2);
    let key = make_weak_key(args.bits, d, &mut rng);
    println!("N = {} ({} bits)", abbreviate(&key.n), key.n.bits());
    println!(
        "searching {} tasks x {BATCH} even differences with {} workers ({} balancing)\n",
        args.tasks,
        args.workers,
        if args.dynamic { "dynamic" } else { "static" }
    );

    let mut registry = TaskTypeRegistry::new();
    register_stock_tasks(&mut registry);
    let registry = registry.into_shared();

    let net = Network::new();
    let (task_w, task_r) = net.channel();
    let (res_w, res_r) = net.channel();
    net.add(Producer::new(
        factor_task_stream(key.n.clone(), args.tasks, BATCH),
        task_w,
    ));
    let speeds = vec![1.0; args.workers];
    if args.dynamic {
        meta_dynamic(&net, registry, &speeds, task_r, res_w);
    } else {
        meta_static(&net, registry, &speeds, task_r, res_w);
    }
    let found: Arc<Mutex<Option<(BigUint, u64)>>> = Arc::new(Mutex::new(None));
    let found_in = found.clone();
    net.add(Consumer::new(res_r, move |env: TaskEnvelope| {
        match env.unpack::<SearchOutcome>()? {
            SearchOutcome::Found { p, d } => {
                *found_in.lock().unwrap() = Some((p, d));
                Ok(false) // stop the network: factor located
            }
            SearchOutcome::NotFound => Ok(true),
        }
    }));

    let start = Instant::now();
    net.run()?;
    let elapsed = start.elapsed();

    let guard = found.lock().unwrap();
    let (p, d) = guard.as_ref().expect("factor must be found");
    let q = p.add_u64(*d);
    println!("factor found in {elapsed:.2?}:");
    println!("  P     = {}", abbreviate(p));
    println!("  P + D = {}  (D = {d})", abbreviate(&q));
    assert_eq!(p.mul(&q), key.n, "verification: P * (P+D) == N");
    println!("  verified: P * (P+D) == N");
    Ok(())
}

fn abbreviate(v: &BigUint) -> String {
    let s = v.to_decimal();
    if s.len() <= 40 {
        s
    } else {
        format!("{}…{} ({} digits)", &s[..18], &s[s.len() - 18..], s.len())
    }
}
