//! Quickstart: the Figure 1 pipeline — Producer, Worker, Consumer.
//!
//! A producer generates "image block" tasks, a worker "compresses" them
//! (here: a toy run-length encoding), and a consumer collects the results
//! in order. All application logic lives in the task types; the processes
//! are the generic ones from `kpn-parallel`.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use kpn::core::Result;
use kpn::parallel::{pipeline, TaskEnv, TaskEnvelope, TaskTypeRegistry, WorkTask};
use serde::{Deserialize, Serialize};

/// A block of "pixels" to compress.
#[derive(Serialize, Deserialize)]
struct BlockTask {
    index: u32,
    pixels: Vec<u8>,
}

/// A compressed block.
#[derive(Serialize, Deserialize, Debug)]
struct CompressedBlock {
    index: u32,
    original_len: usize,
    rle: Vec<(u8, u8)>,
}

impl WorkTask for BlockTask {
    fn run(self: Box<Self>, _env: &TaskEnv) -> Result<TaskEnvelope> {
        let mut rle: Vec<(u8, u8)> = Vec::new();
        for &p in &self.pixels {
            match rle.last_mut() {
                Some((v, n)) if *v == p && *n < u8::MAX => *n += 1,
                _ => rle.push((p, 1)),
            }
        }
        TaskEnvelope::pack(
            "CompressedBlock",
            &CompressedBlock {
                index: self.index,
                original_len: self.pixels.len(),
                rle,
            },
        )
    }
}

fn main() -> Result<()> {
    let mut registry = TaskTypeRegistry::new();
    registry.register::<BlockTask>("BlockTask");
    let registry = registry.into_shared();

    let net = kpn::core::Network::new();
    let mut next_block = 0u32;
    const BLOCKS: u32 = 16;

    pipeline(
        &net,
        registry,
        // Producer: split the "image" into 16x16 blocks.
        move || {
            if next_block >= BLOCKS {
                return Ok(None); // done: closing the channel stops the pipeline
            }
            let index = next_block;
            next_block += 1;
            let pixels = (0..256u32)
                .map(|i| ((i / 16 + index) % 7) as u8)
                .collect();
            Ok(Some(TaskEnvelope::pack(
                "BlockTask",
                &BlockTask { index, pixels },
            )?))
        },
        // Consumer: results arrive in block order, guaranteed by the model.
        move |result: TaskEnvelope| {
            let block: CompressedBlock = result.unpack()?;
            println!(
                "block {:>2}: {} bytes -> {} runs",
                block.index,
                block.original_len,
                block.rle.len()
            );
            Ok(true)
        },
    );

    net.run()?;
    println!("pipeline complete — all {BLOCKS} blocks processed in order");
    Ok(())
}
