//! The full §5.2 deployment: parallel weak-RSA factorization with the
//! producer and consumer on the client and the **workers on remote compute
//! servers**, under dynamic load balancing (Figure 17's schema with the
//! routing stages on the client, exactly like the paper's runs where the
//! experimenter's machine coordinated the lab cluster).
//!
//! The two servers here are in-process `Node`s on loopback TCP; replace
//! their addresses with real `kpn-server` hosts for a genuine cluster (the
//! protocol is identical — see `tests/multiprocess.rs` for the
//! subprocess-based version).
//!
//! ```text
//! cargo run --release --example distributed_factor [-- --bits 256 --tasks 64]
//! ```

use kpn::bignum::{make_weak_key, SearchOutcome};
use kpn::codec::{ObjectReader, ObjectWriter};
use kpn::core::Result;
use kpn::net::{GraphBuilder, Node, ProcessRegistry, ServerHandle, TaskRegistry, CLIENT};
use kpn::parallel::distributed::names;
use kpn::parallel::{
    factor_task_stream, register_parallel_processes, register_stock_tasks, TaskEnvelope,
    TaskTypeRegistry,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const BATCH: u64 = 32;
const WORKERS: usize = 4;

fn parallel_node() -> Result<(std::sync::Arc<Node>, ServerHandle)> {
    let mut tasks = TaskTypeRegistry::new();
    register_stock_tasks(&mut tasks);
    let tasks = tasks.into_shared();
    let mut reg = ProcessRegistry::with_defaults();
    register_parallel_processes(&mut reg, tasks);
    let node = Node::serve_with("127.0.0.1:0", reg, TaskRegistry::new())?;
    let handle = ServerHandle::new(node.addr().to_string());
    Ok((node, handle))
}

fn main() -> Result<()> {
    let mut bits = 256u64;
    let mut tasks = 64u64;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--bits" => {
                bits = argv[i + 1].parse().expect("--bits N");
                i += 2;
            }
            "--tasks" => {
                tasks = argv[i + 1].parse().expect("--tasks N");
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }

    // Plant the factor near the end so every worker stays busy.
    let d = (tasks * 7 / 8) * 2 * BATCH + BATCH;
    let mut rng = StdRng::seed_from_u64(0xD157);
    let key = make_weak_key(bits, d - (d % 2), &mut rng);

    // Client + two compute servers.
    let client_tasks = {
        let mut t = TaskTypeRegistry::new();
        register_stock_tasks(&mut t);
        t.into_shared()
    };
    let mut client_reg = ProcessRegistry::with_defaults();
    register_parallel_processes(&mut client_reg, client_tasks);
    let client = Node::serve_with("127.0.0.1:0", client_reg, TaskRegistry::new())?;
    let (s0, h0) = parallel_node()?;
    let (s1, h1) = parallel_node()?;
    println!("client   at {}", client.addr());
    println!("server 0 at {}", s0.addr());
    println!("server 1 at {}", s1.addr());
    println!(
        "\nfactoring a {}-bit modulus: {} tasks x {BATCH} differences, {WORKERS} remote workers\n",
        key.n.bits(),
        tasks
    );

    // MetaDynamic with the routing stages on the client, workers remote.
    let mut g = GraphBuilder::new();
    let tasks_ch = g.channel();
    let results_ch = g.channel();
    let mut to_w = Vec::new();
    let mut from_w = Vec::new();
    for w in 0..WORKERS {
        let t = g.channel();
        let f = g.channel();
        g.add(w % 2, names::WORKER, &1.0f64, &[t], &[f])?;
        to_w.push(t);
        from_w.push(f);
    }
    let init = g.channel();
    let t_idx = g.channel();
    let idx_full = g.channel();
    let idx_direct = g.channel();
    let idx_select = g.channel();
    let t_data = g.channel();
    g.add(
        CLIENT,
        "Sequence",
        &(0i64, Some(WORKERS as u64)),
        &[],
        &[init],
    )?;
    g.add(CLIENT, "Cons", &false, &[init, t_idx], &[idx_full])?;
    g.add(
        CLIENT,
        "Duplicate",
        &(),
        &[idx_full],
        &[idx_direct, idx_select],
    )?;
    g.add(CLIENT, names::DIRECT, &(), &[tasks_ch, idx_direct], &to_w)?;
    g.add(CLIENT, names::TURNSTILE, &(), &from_w, &[t_data, t_idx])?;
    g.add(
        CLIENT,
        names::SELECT,
        &(WORKERS as u64),
        &[t_data, idx_select],
        &[results_ch],
    )?;
    g.claim_writer(tasks_ch)?;
    g.claim_reader(results_ch)?;

    let mut dep = g.deploy(&client, &[h0, h1])?;
    println!("partitions shipped; worker channels connected automatically\n");

    let mut task_out = ObjectWriter::new(dep.writers.remove(&tasks_ch).expect("claimed"));
    let mut result_in = ObjectReader::new(dep.readers.remove(&results_ch).expect("claimed"));

    let n_for_feed = key.n.clone();
    let feeder = std::thread::spawn(move || {
        let mut stream = factor_task_stream(n_for_feed, tasks, BATCH);
        while let Ok(Some(env)) = stream() {
            if task_out.write(&env).is_err() {
                break; // network tore down: factor already found
            }
        }
    });

    let start = Instant::now();
    let mut checked = 0u64;
    loop {
        let env: TaskEnvelope = result_in.read()?;
        match env.unpack::<SearchOutcome>()? {
            SearchOutcome::Found { p, d } => {
                let q = p.add_u64(d);
                assert_eq!(p.mul(&q), key.n);
                println!(
                    "factor found after {checked} empty tasks, {:.2?} elapsed",
                    start.elapsed()
                );
                println!("  D = {d}; verified P * (P+D) == N");
                break;
            }
            SearchOutcome::NotFound => checked += 1,
        }
    }
    drop(result_in); // termination cascade across both servers
    feeder.join().expect("feeder");
    dep.join()?;
    println!("all partitions terminated cleanly");
    Ok(())
}
