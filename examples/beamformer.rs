//! Delay-and-sum sonar beamforming — the real-time application the paper
//! cites for process networks (§1, reference [1]: "real-time sonar
//! beamforming ... using process networks and POSIX threads").
//!
//! A line array of hydrophones receives a plane wave from some bearing;
//! each element's stream is delayed and summed for a fan of steering
//! angles, and the beam with the most output power points at the source.
//!
//! Topology (one process per box, one channel per arrow):
//!
//! ```text
//! Hydrophone₀ ─┐
//! Hydrophone₁ ─┼──► Beam(−60°) ─┐
//!    ⋮          │      ⋮          ├──► PowerMeter ──► bearing estimate
//! Hydrophone₇ ─┴──► Beam(+60°) ─┘
//! ```
//!
//! Every hydrophone stream is fanned out to all beams with stock
//! `Duplicate` processes; each `Beam` applies its per-element integer
//! delays and sums. Everything is determinate: the bearing estimate is a
//! pure function of the simulated wavefront.
//!
//! ```text
//! cargo run --release --example beamformer [-- BEARING_DEGREES]
//! ```

use kpn::core::stdlib::Duplicate;
use kpn::core::{
    ChannelReader, ChannelWriter, DataReader, DataWriter, Error, Iterative, Network, ProcessCtx,
    Result,
};
use std::sync::{Arc, Mutex};

/// Shared slot the meter publishes `(bearing, per-beam powers)` into.
type SharedEstimate = Arc<Mutex<Option<(f64, Vec<f64>)>>>;

const ELEMENTS: usize = 8;
const BEAMS: usize = 13; // -60° .. +60° in 10° steps
const SAMPLES: u64 = 512;
/// Element spacing over wave speed, in sample periods per sine of bearing.
const MAX_DELAY_SAMPLES: f64 = 6.0;

/// One hydrophone: emits the plane wave as seen at element `index`.
struct Hydrophone {
    out: DataWriter,
    index: usize,
    bearing_rad: f64,
    t: u64,
}

impl Iterative for Hydrophone {
    fn name(&self) -> String {
        format!("Hydrophone({})", self.index)
    }
    fn limit(&self) -> Option<u64> {
        Some(SAMPLES)
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        // A plane wave from `bearing` reaches element i with a delay
        // proportional to i * sin(bearing).
        let delay =
            self.index as f64 * MAX_DELAY_SAMPLES / (ELEMENTS - 1) as f64 * self.bearing_rad.sin();
        let phase = (self.t as f64 - delay) * 0.35;
        self.t += 1;
        self.out.write_f64(phase.sin())
    }
}

/// One steered beam: integer-delays each element stream and sums.
struct Beam {
    inputs: Vec<DataReader>,
    out: DataWriter,
    /// Per-element delay lines (already-read samples waiting to be used).
    delay_lines: Vec<std::collections::VecDeque<f64>>,
}

impl Beam {
    fn new(steer_rad: f64, inputs: Vec<ChannelReader>, out: ChannelWriter) -> Self {
        let n = inputs.len();
        let delay_lines = (0..n)
            .map(|i| {
                // Steering compensates the arrival delay: delay the *other*
                // end of the array. Quantize to whole samples.
                let d = (i as f64 * MAX_DELAY_SAMPLES / (n - 1) as f64 * steer_rad.sin()).round();
                let lead = (MAX_DELAY_SAMPLES - d).max(0.0) as usize;
                std::collections::VecDeque::from(vec![0.0f64; lead])
            })
            .collect();
        Beam {
            inputs: inputs.into_iter().map(DataReader::new).collect(),
            out: DataWriter::new(out),
            delay_lines,
        }
    }
}

impl Iterative for Beam {
    fn name(&self) -> String {
        "Beam".into()
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let mut sum = 0.0;
        for (input, line) in self.inputs.iter_mut().zip(self.delay_lines.iter_mut()) {
            line.push_back(input.read_f64()?);
            sum += line.pop_front().expect("delay line primed");
        }
        self.out.write_f64(sum / self.inputs.len() as f64)
    }
}

/// Integrates each beam's power and reports the strongest bearing.
struct PowerMeter {
    inputs: Vec<DataReader>,
    bearings_deg: Vec<f64>,
    result: SharedEstimate,
    powers: Vec<f64>,
    samples_seen: u64,
}

impl Iterative for PowerMeter {
    fn name(&self) -> String {
        "PowerMeter".into()
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        for (input, p) in self.inputs.iter_mut().zip(self.powers.iter_mut()) {
            match input.read_f64() {
                Ok(v) => *p += v * v,
                Err(Error::Eof) => {
                    // Streams end together; publish the estimate.
                    let (best, _) = self
                        .powers
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                        .unwrap();
                    *self.result.lock().unwrap() =
                        Some((self.bearings_deg[best], self.powers.clone()));
                    return Err(Error::Eof);
                }
                Err(e) => return Err(e),
            }
        }
        self.samples_seen += 1;
        Ok(())
    }
}

fn main() -> Result<()> {
    let true_bearing: f64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("bearing in degrees"))
        .unwrap_or(30.0);
    println!("simulating a source at {true_bearing:+.0}° across {ELEMENTS} hydrophones\n");

    let net = Network::new();
    // Hydrophones → per-beam fanout.
    let mut element_to_beams: Vec<Vec<ChannelReader>> = (0..BEAMS).map(|_| Vec::new()).collect();
    for e in 0..ELEMENTS {
        let (hw, hr) = net.channel();
        net.add(Hydrophone {
            out: DataWriter::new(hw),
            index: e,
            bearing_rad: true_bearing.to_radians(),
            t: 0,
        });
        let mut outs = Vec::with_capacity(BEAMS);
        for beam_inputs in element_to_beams.iter_mut() {
            let (w, r) = net.channel();
            outs.push(w);
            beam_inputs.push(r);
        }
        net.add(Duplicate::new(hr, outs));
    }
    // Beams → power meter.
    let bearings_deg: Vec<f64> = (0..BEAMS).map(|b| -60.0 + 10.0 * b as f64).collect();
    let mut beam_outs = Vec::with_capacity(BEAMS);
    for (b, inputs) in element_to_beams.into_iter().enumerate() {
        let (bw, br) = net.channel();
        net.add(Beam::new(bearings_deg[b].to_radians(), inputs, bw));
        beam_outs.push(DataReader::new(br));
    }
    let result = Arc::new(Mutex::new(None));
    net.add(PowerMeter {
        inputs: beam_outs,
        bearings_deg: bearings_deg.clone(),
        result: result.clone(),
        powers: vec![0.0; BEAMS],
        samples_seen: 0,
    });

    let report = net.run()?;
    let guard = result.lock().unwrap();
    let (estimate, powers) = guard.as_ref().expect("meter published a result");
    for (deg, p) in bearings_deg.iter().zip(powers) {
        let bar = "#".repeat((p / 8.0).min(60.0) as usize);
        println!("{deg:>5.0}° | {bar}");
    }
    println!(
        "\nestimated bearing: {estimate:+.0}°  (true: {true_bearing:+.0}°, {} processes)",
        report.processes_run
    );
    assert!(
        (estimate - true_bearing).abs() <= 10.0,
        "estimate should land within one beam width"
    );
    Ok(())
}
