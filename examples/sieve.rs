//! The Sieve of Eratosthenes (Figures 7/8): a *self-modifying* process
//! network. The Sift process inserts a new Modulo filter into the running
//! graph for every prime it discovers.
//!
//! Demonstrates both §3.4 termination modes:
//! * `primes below N` — limit the Sequence source; every datum produced is
//!   consumed before the graph drains and stops;
//! * `first K primes` — limit the Print sink; the WriteClosed cascade
//!   stops all upstream processes "almost immediately".
//!
//! ```text
//! cargo run --example sieve [-- below 100 | first 25]
//! ```

use kpn::core::stdlib::{Print, Sequence, Sift};
use kpn::core::{Network, Result};

fn main() -> Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, value) = match args.as_slice() {
        [] => ("below".to_string(), 100i64),
        [m, v] => (m.clone(), v.parse().expect("numeric argument")),
        _ => panic!("usage: sieve [below N | first K]"),
    };

    let net = Network::new();
    let (seq_w, seq_r) = net.channel();
    let (out_w, out_r) = net.channel();

    match mode.as_str() {
        "below" => {
            println!("primes below {value} (terminating via the source limit):");
            net.add(Sequence::new(2, (value - 2).max(0) as u64, seq_w));
            net.add(Sift::new(seq_r, out_w));
            net.add(Print::new(out_r).with_label("prime"));
        }
        "first" => {
            println!("first {value} primes (terminating via the sink limit):");
            net.add(Sequence::unbounded(2, seq_w));
            net.add(Sift::new(seq_r, out_w));
            net.add(
                Print::new(out_r)
                    .with_label("prime")
                    .with_limit(value as u64),
            );
        }
        other => panic!("unknown mode {other}; use 'below' or 'first'"),
    }

    let report = net.run()?;
    println!(
        "graph grew to {} processes (one Modulo per prime) and terminated cleanly",
        report.processes_run
    );
    Ok(())
}
