//! The distributed Fibonacci network of Figures 14/15: the program graph
//! is partitioned across *three* compute servers plus the client, and
//! every cross-partition channel gets its network connection established
//! automatically when the partitions are deployed.
//!
//! The servers here are three [`kpn::net::Node`]s in this process,
//! listening on loopback TCP ports — byte-for-byte the same protocol that
//! would run across a LAN (start `Node::serve("0.0.0.0:port")` on real
//! machines and pass their addresses instead).
//!
//! Partitioning (as in Figure 15):
//! * server A: the Add process and both Constants + Cons₁;
//! * server B: the Print side (results flow back to the client);
//! * server C: Duplicate₁ — its output channel to B is a direct B↔C
//!   connection; no data transits A or the client.
//!
//! ```text
//! cargo run --example distributed_fib
//! ```

use kpn::core::{DataReader, Result};
use kpn::net::{GraphBuilder, Node, ServerHandle};

fn main() -> Result<()> {
    // Three compute servers and the deploying client, all speaking TCP.
    let server_a = Node::serve("127.0.0.1:0")?;
    let server_b = Node::serve("127.0.0.1:0")?;
    let server_c = Node::serve("127.0.0.1:0")?;
    let client = Node::serve("127.0.0.1:0")?;
    println!("server A at {}", server_a.addr());
    println!("server B at {}", server_b.addr());
    println!("server C at {}", server_c.addr());
    let handles = [
        ServerHandle::new(server_a.addr().to_string()),
        ServerHandle::new(server_b.addr().to_string()),
        ServerHandle::new(server_c.addr().to_string()),
    ];
    const A: usize = 0;
    const B: usize = 1;
    const C: usize = 2;

    // The Figure 6 graph, with partition assignments.
    let mut g = GraphBuilder::new();
    let ab = g.channel();
    let be = g.channel();
    let cd = g.channel();
    let df = g.channel();
    let ed = g.channel();
    let eg = g.channel();
    let fg = g.channel();
    let fh = g.channel();
    let gb = g.channel();

    g.add(A, "Constant", &(1i64, Some(1u64)), &[], &[ab])?;
    g.add(A, "Cons", &false, &[ab, gb], &[be])?;
    g.add(C, "Duplicate", &(), &[be], &[ed, eg])?; // on server C
    g.add(A, "Add", &(), &[eg, fg], &[gb])?;
    g.add(A, "Constant", &(1i64, Some(1u64)), &[], &[cd])?;
    g.add(A, "Cons", &false, &[cd, ed], &[df])?;
    g.add(B, "Duplicate", &(), &[df], &[fh, fg])?; // on server B
    g.claim_reader(fh)?; // results back to the client

    let mut deployment = g.deploy(&client, &handles)?;
    println!("partitions shipped; channels connected automatically (§4.2)\n");

    let mut results = DataReader::new(deployment.readers.remove(&fh).expect("claimed"));
    for i in 1..=20 {
        println!("fib {:>2}: {}", i, results.read_i64()?);
    }
    drop(results); // closing the last reader starts the distributed cascade
    deployment.join()?;
    println!("\nall partitions terminated via the cross-network cascade (§3.4)");
    Ok(())
}
