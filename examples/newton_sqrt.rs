//! Newton's method for square roots (Figure 11): data-dependent
//! termination. The network iterates `r ← (x/r + r)/2`; when the estimate
//! stops changing (floating-point fixpoint), the Equal process emits
//! `true`, the Guard passes exactly one value, and the whole graph
//! terminates through the §3.4 cascade.
//!
//! ```text
//! cargo run --example newton_sqrt [-- 2.0 42.0 1e6]
//! ```

use kpn::core::graphs::{newton_sqrt, GraphOptions};
use kpn::core::{Network, Result};

fn main() -> Result<()> {
    let args: Vec<f64> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("numeric argument"))
        .collect();
    let inputs = if args.is_empty() {
        vec![2.0, 42.0, 1.0e6]
    } else {
        args
    };

    for x in inputs {
        let net = Network::new();
        let out = newton_sqrt(&net, x, &GraphOptions::default());
        net.run()?;
        let got = out.lock().expect("collector")[0];
        println!(
            "sqrt({x}) = {got}   (std: {}, delta: {:.3e})",
            x.sqrt(),
            (got - x.sqrt()).abs()
        );
    }
    Ok(())
}
