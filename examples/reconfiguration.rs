//! Dynamic reconfiguration (§3.3, Figures 9/10): processes removing
//! themselves from a *running* graph without losing a byte.
//!
//! A chain of `Cons` processes each prepends one value and then — in
//! `--retire` mode — splices its input straight onto its output channel
//! and exits, collapsing the chain to nothing while the consumer keeps
//! reading. The output is identical either way (determinacy); what changes
//! is the number of live copy loops, which the per-channel byte counters
//! make visible.
//!
//! ```text
//! cargo run --release --example reconfiguration [-- --copy]
//! ```

use kpn::core::stdlib::{Collect, Cons, Constant, Sequence};
use kpn::core::{Network, Result};
use std::sync::{Arc, Mutex};
use std::time::Instant;

const CHAIN: usize = 8;
const VALUES: u64 = 200_000;

fn run(self_removing: bool) -> Result<(Vec<i64>, std::time::Duration, u64)> {
    let net = Network::new();
    // source --> cons_1 --> cons_2 --> ... --> cons_CHAIN --> collect
    // each cons_i prepends the value -(i) read from its own one-shot
    // prefix channel.
    let (src_w, mut tail_r) = net.channel();
    net.add(Sequence::new(0, VALUES, src_w));
    for i in 0..CHAIN {
        let (prefix_w, prefix_r) = net.channel();
        net.add(Constant::new(-(i as i64 + 1), prefix_w).with_limit(1));
        let (out_w, out_r) = net.channel();
        let cons = Cons::new(prefix_r, tail_r, out_w);
        net.add(if self_removing {
            cons.removing_self()
        } else {
            cons
        });
        tail_r = out_r;
    }
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Collect::new(tail_r, out.clone()));
    let start = Instant::now();
    net.run()?;
    let elapsed = start.elapsed();
    // Total bytes that crossed all channels: with retirement the interior
    // copies disappear, so this shrinks.
    let total_bytes: u64 = net
        .channel_report()
        .iter()
        .map(|(_, s)| s.bytes_written)
        .sum();
    let v = out.lock().unwrap().clone();
    Ok((v, elapsed, total_bytes))
}

fn main() -> Result<()> {
    let copy_mode = std::env::args().any(|a| a == "--copy");
    let (label, self_removing) = if copy_mode {
        ("copying Cons (no reconfiguration)", false)
    } else {
        ("self-removing Cons (Figures 9/10)", true)
    };
    println!("mode: {label}");
    let (values, elapsed, bytes) = run(self_removing)?;

    // Prefixes arrive outermost-last: cons_CHAIN's prefix first.
    let expected_prefix: Vec<i64> = (1..=CHAIN as i64).map(|i| -i).rev().collect();
    assert_eq!(&values[..CHAIN], &expected_prefix[..]);
    assert_eq!(values.len(), CHAIN + VALUES as usize);
    assert_eq!(values[CHAIN], 0);
    assert_eq!(*values.last().unwrap(), VALUES as i64 - 1);

    println!(
        "output: {} values, prefix {:?}",
        values.len(),
        &values[..CHAIN]
    );
    println!("elapsed: {elapsed:.2?}");
    println!("bytes crossing channels: {bytes}");
    println!(
        "\n(compare with `--copy`: identical output, but every value is copied\n\
         through all {CHAIN} Cons stages instead of flowing through spliced channels)"
    );
    Ok(())
}
