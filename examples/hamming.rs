//! The Hamming-number network (Figure 12): computes the ordered sequence
//! of integers `2^k · 3^m · 5^n` through a feedback loop of Scale
//! processes and an ordered merge.
//!
//! Under Kahn semantics this network's channels grow without bound; with
//! bounded channels it artificially deadlocks (§3.5). Run with tiny
//! channel capacities to watch Parks' bounded scheduling resolve the
//! deadlocks by growing the smallest full channel.
//!
//! ```text
//! cargo run --example hamming [-- COUNT [CAPACITY_BYTES]]
//! ```

use kpn::core::graphs::{hamming, GraphOptions};
use kpn::core::{Network, Result};

fn main() -> Result<()> {
    let args: Vec<u64> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("numeric argument"))
        .collect();
    let count = args.first().copied().unwrap_or(30);
    let capacity = args.get(1).copied().unwrap_or(16) as usize;

    println!("first {count} Hamming numbers with {capacity}-byte channels:");
    let net = Network::new();
    let opts = GraphOptions {
        channel_capacity: capacity,
        ..Default::default()
    };
    let out = hamming(&net, count, &opts);
    let report = net.run()?;
    let values = out.lock().expect("collector");
    for chunk in values.chunks(10) {
        println!(
            "  {}",
            chunk
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    println!(
        "deadlock monitor grew channels {} times to keep the graph running",
        report.monitor.growths
    );
    Ok(())
}
