//! The Fibonacci network of Figures 2 and 6: Cons, Duplicate, Add and
//! Print processes wired into two coupled feedback loops.
//!
//! This version builds the graph exactly as the paper's Figure 6 code
//! does, channel names included, and prints the first 20 numbers. Run
//! with `--self-removing` to use the reconfiguring Cons processes of
//! Figure 9 (identical output, §3.3).
//!
//! ```text
//! cargo run --example fibonacci [-- --self-removing]
//! ```

use kpn::core::stdlib::{Add, Cons, Constant, Duplicate, Print};
use kpn::core::{Network, Result};

fn main() -> Result<()> {
    let self_removing = std::env::args().any(|a| a == "--self-removing");

    let net = Network::new();
    // Channel names follow Figure 6.
    let (ab_w, ab_r) = net.channel();
    let (be_w, be_r) = net.channel();
    let (cd_w, cd_r) = net.channel();
    let (df_w, df_r) = net.channel();
    let (ed_w, ed_r) = net.channel();
    let (eg_w, eg_r) = net.channel();
    let (fg_w, fg_r) = net.channel();
    let (fh_w, fh_r) = net.channel();
    let (gb_w, gb_r) = net.channel();

    let cons1 = Cons::new(ab_r, gb_r, be_w);
    let cons2 = Cons::new(cd_r, ed_r, df_w);
    let (cons1, cons2) = if self_removing {
        println!("(using self-removing Cons processes — Figure 9)");
        (cons1.removing_self(), cons2.removing_self())
    } else {
        (cons1, cons2)
    };

    net.add(Constant::new(1, ab_w).with_limit(1));
    net.add(cons1);
    net.add(Duplicate::two(be_r, ed_w, eg_w));
    net.add(Add::new(eg_r, fg_r, gb_w));
    net.add(Constant::new(1, cd_w).with_limit(1));
    net.add(cons2);
    net.add(Duplicate::two(df_r, fh_w, fg_w));
    net.add(Print::new(fh_r).with_label("fib").with_limit(20));

    let report = net.run()?;
    println!(
        "network terminated cleanly: {} process threads ran",
        report.processes_run
    );
    Ok(())
}
