//! Regression tests for buffered typed streams and the deadlock-safe
//! flush rule (see `kpn-core`'s crate docs, "Buffering and flush
//! semantics").
//!
//! The invariant under test: batching writes through a private buffer must
//! never change what a network computes or how the deadlock monitor
//! classifies a stall. The dangerous case is a token sitting in an
//! unflushed buffer while its owner parks on a blocking read — without
//! the auto-flush, the consumer starves and the monitor sees a false true
//! deadlock. These tests pin that behaviour at capacities small enough
//! (≤ 64 bytes) to force constant blocking and channel growth.

use kpn::core::graphs::{
    first_primes, hamming, hamming_reference, primes_reference, GraphOptions,
};
use kpn::core::{DataReader, DataWriter, Error, Network};
use std::time::{Duration, Instant};

fn opts(capacity: usize) -> GraphOptions {
    GraphOptions {
        channel_capacity: capacity,
        self_removing_cons: false,
    }
}

/// Hamming at tiny capacities: the feedback loops block on nearly every
/// write, so every blocking read must see the producer's flushed bytes.
#[test]
fn hamming_terminates_with_buffered_streams_at_tiny_capacities() {
    for capacity in [16, 32, 64] {
        let net = Network::new();
        let out = hamming(&net, 60, &opts(capacity));
        net.run().unwrap();
        assert_eq!(
            &*out.lock().unwrap(),
            &hamming_reference(60),
            "capacity {capacity}"
        );
    }
}

/// The self-reconfiguring sieve spawns new filter stages mid-run; each new
/// stage's `DataWriter` buffer must register with its own thread's flush
/// set, not its creator's.
#[test]
fn sieve_terminates_with_buffered_streams_at_tiny_capacities() {
    for capacity in [16, 64] {
        let net = Network::new();
        let out = first_primes(&net, 30, &opts(capacity));
        net.run().unwrap();
        let reference: Vec<i64> = primes_reference(200).into_iter().take(30).collect();
        assert_eq!(&*out.lock().unwrap(), &reference, "capacity {capacity}");
    }
}

/// A two-process ping-pong where each token is far smaller than the 4 KiB
/// stream buffer. Without flush-before-block, the first `write_i64` stays
/// private, both processes park on reads, and the network hangs (or is
/// misreported as truly deadlocked). With it, the exchange completes.
#[test]
fn buffered_ping_pong_does_not_false_deadlock() {
    let net = Network::new();
    let (aw, ar) = net.channel_with_capacity(64);
    let (bw, br) = net.channel_with_capacity(64);
    net.add_fn("ping", move |_| {
        let mut w = DataWriter::new(aw);
        let mut r = DataReader::new(br);
        for i in 0..1000i64 {
            w.write_i64(i)?; // buffered: invisible until a flush
            assert_eq!(r.read_i64()?, i * 2); // read must flush first
        }
        Ok(())
    });
    net.add_fn("pong", move |_| {
        let mut r = DataReader::new(ar);
        let mut w = DataWriter::new(bw);
        loop {
            let v = r.read_i64()?;
            w.write_i64(v * 2)?;
        }
    });
    net.run().unwrap();
}

/// Buffering must not mask a *genuine* deadlock: two processes each
/// read-waiting on the other still abort promptly, with all buffers empty
/// at the point the monitor inspects the network.
#[test]
fn true_deadlock_still_detected_under_buffered_streams() {
    let net = Network::new();
    let (aw, ar) = net.channel_with_capacity(64);
    let (bw, br) = net.channel_with_capacity(64);
    net.add_fn("p1", move |_| {
        let mut r = DataReader::new(br);
        let mut w = DataWriter::new(aw);
        loop {
            let v = r.read_i64()?;
            w.write_i64(v)?;
        }
    });
    net.add_fn("p2", move |_| {
        let mut r = DataReader::new(ar);
        let mut w = DataWriter::new(bw);
        loop {
            let v = r.read_i64()?;
            w.write_i64(v)?;
        }
    });
    let start = Instant::now();
    assert!(matches!(net.run(), Err(Error::Deadlocked)));
    assert!(start.elapsed() < Duration::from_secs(5));
}

/// Buffered and unbuffered endpoints produce byte-identical histories —
/// the Kahn determinacy argument for the batching layer, checked directly.
#[test]
fn buffered_and_unbuffered_histories_agree() {
    fn run(buffered: bool) -> Vec<i64> {
        let net = Network::new();
        let (w, r) = net.channel_with_capacity(32);
        net.add_fn("src", move |_| {
            let mut dw = if buffered {
                DataWriter::new(w)
            } else {
                DataWriter::unbuffered(w)
            };
            for i in 0..500i64 {
                dw.write_i64(i * 3)?;
            }
            Ok(())
        });
        let out = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = out.clone();
        net.add_fn("dst", move |_| {
            let mut dr = if buffered {
                DataReader::new(r)
            } else {
                DataReader::unbuffered(r)
            };
            while let Ok(v) = dr.read_i64() {
                sink.lock().unwrap().push(v);
            }
            Ok(())
        });
        net.run().unwrap();
        let v = out.lock().unwrap().clone();
        v
    }
    assert_eq!(run(true), run(false));
}

/// Mixed-size payloads across the buffer boundary: blocks larger than the
/// stream buffer bypass it, interleaved with small typed tokens, and the
/// reader reassembles everything in order.
#[test]
fn large_blocks_interleave_with_small_tokens() {
    let net = Network::new();
    let (w, r) = net.channel_with_capacity(64);
    let big: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
    let big_w = big.clone();
    net.add_fn("src", move |_| {
        let mut dw = DataWriter::new(w);
        for round in 0..5i64 {
            dw.write_i64(round)?;
            dw.write_block(&big_w)?;
        }
        Ok(())
    });
    net.add_fn("dst", move |_| {
        let mut dr = DataReader::new(r);
        for round in 0..5i64 {
            assert_eq!(dr.read_i64()?, round);
            assert_eq!(dr.read_block()?, big);
        }
        Ok(())
    });
    net.run().unwrap();
}
