//! The paper's central claim (§2): a Kahn network's channel histories are
//! determined by the graph alone — "the results of a computation are
//! unique and correct whether the program is executed on a computer with a
//! single processor, a computer with multiple processors, or many
//! computers distributed across a network."
//!
//! These property tests perturb everything the model says must not matter
//! — channel capacities (scheduling pressure), worker speeds (timing),
//! self-reconfiguration — and require byte-identical outputs.

use kpn::core::graphs::{
    fibonacci, fibonacci_reference, first_primes, hamming, hamming_reference, primes_reference,
    GraphOptions,
};
use kpn::core::{MonitorTiming, Network, NetworkConfig};
use kpn::parallel::{
    meta_dynamic, meta_static, register_stock_tasks, synthetic_task_stream, Consumer, Producer,
    TaskEnvelope, TaskTypeRegistry,
};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

fn opts(capacity: usize, self_removing: bool) -> GraphOptions {
    GraphOptions {
        channel_capacity: capacity,
        self_removing_cons: self_removing,
    }
}

/// A network with a fast monitor cadence: these tests deliberately starve
/// tiny channels, so deadlock checks dominate wall-clock time at the
/// default 20ms tick.
fn fast_net() -> Network {
    Network::with_config(NetworkConfig {
        monitor_timing: MonitorTiming::fast(),
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fibonacci output is independent of channel capacities and of the
    /// Figure 9 reconfiguration.
    #[test]
    fn fibonacci_is_determinate(
        capacity in 16usize..4096,
        self_removing in any::<bool>(),
        count in 1u64..40,
    ) {
        let net = fast_net();
        let out = fibonacci(&net, count, &opts(capacity, self_removing));
        net.run().unwrap();
        prop_assert_eq!(&*out.lock().unwrap(), &fibonacci_reference(count as usize));
    }

    /// Hamming output is independent of capacities, even when tiny buffers
    /// force the monitor to grow channels mid-run.
    #[test]
    fn hamming_is_determinate(
        capacity in 16usize..2048,
        count in 1u64..80,
    ) {
        let net = fast_net();
        let out = hamming(&net, count, &opts(capacity, false));
        net.run().unwrap();
        prop_assert_eq!(&*out.lock().unwrap(), &hamming_reference(count as usize));
    }

    /// The self-reconfiguring sieve always produces the primes, regardless
    /// of buffer pressure.
    #[test]
    fn sieve_is_determinate(capacity in 64usize..2048, k in 1usize..30) {
        let net = fast_net();
        let out = first_primes(&net, k as u64, &opts(capacity, false));
        net.run().unwrap();
        let reference: Vec<i64> = primes_reference(200).into_iter().take(k).collect();
        prop_assert_eq!(&*out.lock().unwrap(), &reference);
    }

    /// §5: the MetaDynamic schema is "well behaved" — its input-output
    /// relation is independent of the (timing-dependent) index stream.
    /// Randomized worker speeds change arrival order; the output must not
    /// change, and must equal the MetaStatic output.
    #[test]
    fn meta_schemas_are_determinate(
        speeds in proptest::collection::vec(0.25f64..4.0, 1..6),
        tasks in 1u64..24,
    ) {
        let run = |dynamic: bool| -> Vec<u64> {
            let mut reg = TaskTypeRegistry::new();
            register_stock_tasks(&mut reg);
            let reg = reg.into_shared();
            let net = fast_net();
            let (tw, tr) = net.channel();
            let (rw, rr) = net.channel();
            net.add(Producer::new(synthetic_task_stream(tasks, 1.0), tw));
            if dynamic {
                meta_dynamic(&net, reg, &speeds, tr, rw);
            } else {
                meta_static(&net, reg, &speeds, tr, rw);
            }
            let out = Arc::new(Mutex::new(Vec::new()));
            let sink = out.clone();
            net.add(Consumer::new(rr, move |env: TaskEnvelope| {
                sink.lock().unwrap().push(env.unpack::<u64>()?);
                Ok(true)
            }));
            net.run().unwrap();
            let v = out.lock().unwrap().clone();
            v
        };
        let expected: Vec<u64> = (0..tasks).collect();
        prop_assert_eq!(run(false), expected.clone());
        prop_assert_eq!(run(true), expected);
    }
}

/// Repeated identical runs must agree exactly (scheduling noise only).
#[test]
fn repeated_runs_are_identical() {
    let mut baseline: Option<Vec<i64>> = None;
    for _ in 0..10 {
        let net = fast_net();
        let out = hamming(&net, 60, &opts(64, false));
        net.run().unwrap();
        let got = out.lock().unwrap().clone();
        match &baseline {
            None => baseline = Some(got),
            Some(b) => assert_eq!(&got, b),
        }
    }
}

/// The paper's title claim: the same program graph produces identical
/// results "whether the program is executed on a computer with a single
/// processor ... or many computers distributed across a network". Deploy
/// Fibonacci under four different partitionings — all-local, one server,
/// and two different three-server cuts — and require identical streams.
#[test]
fn output_is_independent_of_partitioning() {
    use kpn::core::DataReader;
    use kpn::net::{GraphBuilder, Node, ServerHandle};

    fn deploy_and_collect(assignment: [usize; 7]) -> Vec<i64> {
        let client = Node::serve("127.0.0.1:0").unwrap();
        let servers: Vec<_> = (0..3)
            .map(|_| Node::serve("127.0.0.1:0").unwrap())
            .collect();
        let handles: Vec<ServerHandle> = servers
            .iter()
            .map(|s| ServerHandle::new(s.addr().to_string()))
            .collect();
        let mut g = GraphBuilder::new();
        let ab = g.channel();
        let be = g.channel();
        let cd = g.channel();
        let df = g.channel();
        let ed = g.channel();
        let eg = g.channel();
        let fg = g.channel();
        let fh = g.channel();
        let gb = g.channel();
        let [p0, p1, p2, p3, p4, p5, p6] = assignment;
        g.add(p0, "Constant", &(1i64, Some(1u64)), &[], &[ab])
            .unwrap();
        g.add(p1, "Cons", &false, &[ab, gb], &[be]).unwrap();
        g.add(p2, "Duplicate", &(), &[be], &[ed, eg]).unwrap();
        g.add(p3, "Add", &(), &[eg, fg], &[gb]).unwrap();
        g.add(p4, "Constant", &(1i64, Some(1u64)), &[], &[cd])
            .unwrap();
        g.add(p5, "Cons", &false, &[cd, ed], &[df]).unwrap();
        g.add(p6, "Duplicate", &(), &[df], &[fh, fg]).unwrap();
        g.claim_reader(fh).unwrap();
        let mut dep = g.deploy(&client, &handles).unwrap();
        let mut r = DataReader::new(dep.readers.remove(&fh).unwrap());
        let got: Vec<i64> = (0..30).map(|_| r.read_i64().unwrap()).collect();
        drop(r);
        dep.join().unwrap();
        got
    }

    let all_on_one = deploy_and_collect([0; 7]);
    let three_way_a = deploy_and_collect([0, 0, 2, 0, 0, 0, 1]);
    let three_way_b = deploy_and_collect([1, 2, 0, 1, 2, 0, 2]);
    let reference = kpn::core::graphs::fibonacci_reference(30);
    assert_eq!(all_on_one, reference);
    assert_eq!(three_way_a, reference);
    assert_eq!(three_way_b, reference);
}
