//! Cross-backend chaos determinacy: the event-driven net backend changes
//! *how* a remote endpoint waits (parked fiber vs blocked thread), and
//! Kahn determinacy says that must be invisible — under a pinned fault
//! seed the channel histories have to come out bit-identical whichever
//! backend ran them. The `Transport::retry_read`/`retry_write` cadence
//! contract is what makes this hold with fault injection in the stack:
//! one logical operation charges one fault-schedule step under both
//! backends, so a pinned seed's faults land on the same operations.
//!
//! The thread-backend leg runs on the default thread-per-process
//! executor (the configuration the chaos suite pins in CI); the reactor
//! leg runs the deployed networks on the pooled executor so readiness
//! parking is the real code path, not the foreign-thread fallback.
//!
//! The backend override is process-global, so these tests serialize on a
//! lock (they never run concurrently in a normal invocation anyway: one
//! is ignored, one is not).

#![cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]

use kpn::core::exec::set_net_backend;
use kpn::core::NetBackend;
use kpn::net::chaos::{chaos_policy, relay_history, ChaosCluster};
use kpn::net::FaultProfile;
use std::sync::Mutex;

static BACKEND_LOCK: Mutex<()> = Mutex::new(());

/// Same pinned seeds as `chaos_reconnect.rs` (CI's chaos job).
const SEEDS: [u64; 3] = [0x5EED_0001, 0x5EED_0002, 0x5EED_0003];

fn profile() -> FaultProfile {
    FaultProfile {
        mean_ops_between_faults: 12,
        refuse_connects: 1, // guarantees each schedule fires at least once
        max_faults: 10,
        ..FaultProfile::default()
    }
}

/// One seeded relay run, retried on *failed* runs only: under wall-clock
/// load a stall can push a reconnect episode past its budget and
/// terminate the relay early (a pre-existing sensitivity of the chaos
/// suite on loaded single-core machines, present under both backends).
/// A retry rebuilds the cluster, so the seed replays its schedule from
/// the top. Determinacy itself is never retried — a run that *completes*
/// with a divergent history fails the caller's comparison outright.
fn seeded_history(backend: NetBackend, seed: u64) -> Vec<i64> {
    let mut last = None;
    for _ in 0..3 {
        let cluster = ChaosCluster::with_faults(2, seed, profile(), chaos_policy()).unwrap();
        match relay_history(&cluster, 48) {
            Ok(history) => {
                assert!(
                    cluster.injected() > 0,
                    "seed {seed:#x} injected no faults under {backend:?}"
                );
                return history;
            }
            Err(e) => last = Some(e),
        }
    }
    panic!(
        "relay under {backend:?} seed {seed:#x} failed three attempts: {}",
        last.unwrap()
    );
}

/// Relay histories under `backend`: the fault-free baseline plus one run
/// per seed, all of which must already agree within the backend.
fn histories(backend: NetBackend, seeds: &[u64]) -> Vec<Vec<i64>> {
    set_net_backend(Some(backend));
    let mut out = Vec::new();
    let plain = ChaosCluster::plain(2).unwrap();
    out.push(relay_history(&plain, 48).unwrap());
    for &seed in seeds {
        out.push(seeded_history(backend, seed));
    }
    set_net_backend(None);
    out
}

fn assert_backends_agree(seeds: &[u64]) {
    let threads = histories(NetBackend::Threads, seeds);
    // Pooled networks for the reactor leg (the deployed graphs read the
    // executor mode from the environment per network start).
    std::env::set_var("KPN_WORKERS", "2");
    let reactor = histories(NetBackend::Reactor, seeds);
    std::env::remove_var("KPN_WORKERS");
    for (i, h) in threads.iter().enumerate() {
        assert_eq!(
            h, &threads[0],
            "thread backend broke determinacy on run {i}"
        );
    }
    assert_eq!(
        threads, reactor,
        "histories diverge between thread and reactor backends"
    );
}

#[test]
fn relay_histories_identical_across_backends() {
    let _g = BACKEND_LOCK.lock().unwrap();
    // The kpn-net unit suite's pinned seed: its schedule avoids the
    // long-stall interleavings that make the 0x5EED seeds sensitive to
    // wall-clock load (they stay in the ignored variant, where CI's
    // chaos job runs them with the whole machine to themselves).
    assert_backends_agree(&[0xC0FFEE]);
}

#[test]
#[ignore = "chaos: run with --ignored"]
fn relay_histories_identical_across_backends_all_seeds() {
    let _g = BACKEND_LOCK.lock().unwrap();
    assert_backends_agree(&SEEDS);
}
