//! Cross-backend chaos determinacy: the event-driven net backend changes
//! *how* a remote endpoint waits (parked fiber vs blocked thread), and
//! Kahn determinacy says that must be invisible — under a pinned fault
//! seed the channel histories have to come out bit-identical whichever
//! backend ran them. The `Transport::retry_read`/`retry_write` cadence
//! contract is what makes this hold with fault injection in the stack:
//! one logical operation charges one fault-schedule step under both
//! backends, so a pinned seed's faults land on the same operations.
//!
//! The thread-backend leg runs on the default thread-per-process
//! executor (the configuration the chaos suite pins in CI); the reactor
//! leg runs the deployed networks on the pooled executor so readiness
//! parking is the real code path, not the foreign-thread fallback.
//!
//! The backend override is process-global, so these tests serialize on a
//! lock (they never run concurrently in a normal invocation anyway: one
//! is ignored, one is not).

#![cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]

use kpn::core::exec::set_net_backend;
use kpn::core::NetBackend;
use kpn::net::chaos::{chaos_policy, relay_history, ChaosCluster};
use kpn::net::FaultProfile;
use std::sync::Mutex;

static BACKEND_LOCK: Mutex<()> = Mutex::new(());

/// Same pinned seeds as `chaos_reconnect.rs` (CI's chaos job).
const SEEDS: [u64; 3] = [0x5EED_0001, 0x5EED_0002, 0x5EED_0003];

fn profile() -> FaultProfile {
    FaultProfile {
        mean_ops_between_faults: 12,
        refuse_connects: 1, // guarantees each schedule fires at least once
        max_faults: 10,
        ..FaultProfile::default()
    }
}

/// One seeded relay run. Reconnect budgets are charged in nominal wait
/// time (see `ReconnectPolicy::budget`), so a loaded machine performs
/// exactly as many recovery attempts as an idle one and a run either
/// completes or fails identically regardless of wall-clock load — no
/// retry loop papering over early budget exhaustion.
fn seeded_history(backend: NetBackend, seed: u64) -> Vec<i64> {
    let cluster = ChaosCluster::with_faults(2, seed, profile(), chaos_policy()).unwrap();
    let history = relay_history(&cluster, 48)
        .unwrap_or_else(|e| panic!("relay under {backend:?} seed {seed:#x} failed: {e}"));
    assert!(
        cluster.injected() > 0,
        "seed {seed:#x} injected no faults under {backend:?}"
    );
    history
}

/// Relay histories under `backend`: the fault-free baseline plus one run
/// per seed, all of which must already agree within the backend.
fn histories(backend: NetBackend, seeds: &[u64]) -> Vec<Vec<i64>> {
    set_net_backend(Some(backend));
    let mut out = Vec::new();
    let plain = ChaosCluster::plain(2).unwrap();
    out.push(relay_history(&plain, 48).unwrap());
    for &seed in seeds {
        out.push(seeded_history(backend, seed));
    }
    set_net_backend(None);
    out
}

fn assert_backends_agree(seeds: &[u64]) {
    let threads = histories(NetBackend::Threads, seeds);
    // Pooled networks for the reactor leg (the deployed graphs read the
    // executor mode from the environment per network start).
    std::env::set_var("KPN_WORKERS", "2");
    let reactor = histories(NetBackend::Reactor, seeds);
    std::env::remove_var("KPN_WORKERS");
    for (i, h) in threads.iter().enumerate() {
        assert_eq!(
            h, &threads[0],
            "thread backend broke determinacy on run {i}"
        );
    }
    assert_eq!(
        threads, reactor,
        "histories diverge between thread and reactor backends"
    );
}

#[test]
fn relay_histories_identical_across_backends() {
    let _g = BACKEND_LOCK.lock().unwrap();
    // The kpn-net unit suite's pinned seed; the full 0x5EED set stays
    // in the ignored variant, which CI's chaos job runs with the whole
    // machine to itself.
    assert_backends_agree(&[0xC0FFEE]);
}

#[test]
#[ignore = "chaos: run with --ignored"]
fn relay_histories_identical_across_backends_all_seeds() {
    let _g = BACKEND_LOCK.lock().unwrap();
    assert_backends_agree(&SEEDS);
}
