//! Fast-scale validation that the measured evaluation reproduces the
//! *shape* of the paper's results (Table 2, Figures 19/20). The full-scale
//! regeneration lives in the `kpn-bench` binaries; these tests run the
//! same harness at a reduced scale so `cargo test` stays quick.

use kpn_bench::{measure, HarnessConfig, Schema};
use kpn_cluster::{
    dynamic_makespan_minutes, ideal_time_minutes, static_makespan_minutes, Inventory, TimeScale,
};

fn cfg() -> HarnessConfig {
    HarnessConfig {
        tasks: 128,
        scale: TimeScale {
            millis_per_minute: 30.0,
        },
        inventory: Inventory::paper(),
    }
}

#[test]
fn table2_shape_static_stalls_at_worker_8() {
    // §5.2: adding the first class-C CPU makes static load balancing
    // *worse*, because every round moves in lock-step with the slowest
    // worker.
    let cfg = cfg();
    let t7 = measure(&cfg, Schema::Static, 7).minutes;
    let t8 = measure(&cfg, Schema::Static, 8).minutes;
    assert!(
        t8 > t7 * 1.1,
        "static time must rise when the slow CPU joins: {t7:.2} → {t8:.2}"
    );
}

#[test]
fn table2_shape_dynamic_does_not_stall() {
    let cfg = cfg();
    let t7 = measure(&cfg, Schema::Dynamic, 7).minutes;
    let t8 = measure(&cfg, Schema::Dynamic, 8).minutes;
    assert!(
        t8 < t7 * 1.1,
        "dynamic must keep improving (or hold) at worker 8: {t7:.2} → {t8:.2}"
    );
}

#[test]
fn table2_shape_dynamic_beats_static_in_heterogeneous_pool() {
    let cfg = cfg();
    for n in [8usize, 16] {
        let st = measure(&cfg, Schema::Static, n).minutes;
        let dy = measure(&cfg, Schema::Dynamic, n).minutes;
        assert!(
            dy < st,
            "dynamic ({dy:.2}) must beat static ({st:.2}) at {n} workers"
        );
    }
}

#[test]
fn measured_times_track_analytic_models() {
    // The measured harness should land close to the analytic makespans
    // (within scheduling overhead and sleep granularity).
    let cfg = cfg();
    let task_minutes = cfg.task_minutes();
    for n in [2usize, 8] {
        let st_measured = measure(&cfg, Schema::Static, n).minutes;
        let st_model = static_makespan_minutes(&cfg.inventory, n, cfg.tasks, task_minutes);
        assert!(
            st_measured >= st_model * 0.9,
            "static at {n}: measured {st_measured:.2} below model {st_model:.2}?"
        );
        assert!(
            st_measured <= st_model * 1.6 + 1.0,
            "static at {n}: measured {st_measured:.2} way above model {st_model:.2}"
        );
        let dy_measured = measure(&cfg, Schema::Dynamic, n).minutes;
        let dy_model = dynamic_makespan_minutes(&cfg.inventory, n, cfg.tasks, task_minutes);
        assert!(
            dy_measured <= dy_model * 1.6 + 1.0,
            "dynamic at {n}: measured {dy_measured:.2} way above model {dy_model:.2}"
        );
    }
}

#[test]
fn speedup_is_monotone_for_dynamic() {
    // Figure 20: the dynamic speedup curve rises (within noise) across
    // the sweep.
    let cfg = cfg();
    let s2 = measure(&cfg, Schema::Dynamic, 2).speed;
    let s8 = measure(&cfg, Schema::Dynamic, 8).speed;
    let s16 = measure(&cfg, Schema::Dynamic, 16).speed;
    assert!(s8 > s2, "{s8:.2} > {s2:.2}");
    assert!(s16 > s8, "{s16:.2} > {s8:.2}");
}

#[test]
fn ideal_curve_has_paper_inflections() {
    let inv = Inventory::paper();
    // Marginal speed gained by each added worker.
    let marginal: Vec<f64> = (1..=32)
        .map(|n| {
            ideal_time_minutes(&inv, n); // exercise
            kpn_cluster::ideal_speed(&inv, n)
                - if n == 1 {
                    0.0
                } else {
                    kpn_cluster::ideal_speed(&inv, n - 1)
                }
        })
        .collect();
    // Worker 8 adds a class-C CPU (speed 1.0) after class-B (1.71).
    assert!(marginal[7] < marginal[6]);
    // Worker 27 adds the first class-E CPU (0.80) after class-D (0.99).
    assert!(marginal[26] < marginal[25]);
}
