//! Cross-executor conformance tests for the distributed-algorithm
//! workloads (`kpn::dist`): the round-synchronous adapter must produce
//! per-node outputs that are a pure function of the topology and inputs —
//! identical under one-thread-per-process, the pooled executor at 1/2/4
//! workers, and the simulation scheduler across 100+ seeded schedules,
//! and identical to the lockstep reference simulation at every scale up
//! to a 100 000-process grid. This is the Kahn determinacy claim (§2)
//! quantified over a workload family the paper never ran: PN/LOCAL-model
//! graph algorithms where the network *is* the input graph.

use kpn::core::{ExecMode, LintLevel, NetworkReport, SchedulePolicy, SimScheduler};
use kpn::dist::{
    check_cover, check_matching, effective_rounds, grid, path, random_bipartite_regular,
    random_regular, ring, run, simulate, Bmm, DistConfig, DistGraph, GossipMax, Mvc3,
    NodeAlgorithm,
};

/// The executor matrix: the paper's thread model, the pool at one, two,
/// and four workers, and one seeded simulation schedule.
fn modes() -> Vec<(&'static str, ExecMode)> {
    vec![
        ("thread", ExecMode::Thread),
        ("pooled:1", ExecMode::Pooled { workers: 1 }),
        ("pooled:2", ExecMode::Pooled { workers: 2 }),
        ("pooled:4", ExecMode::Pooled { workers: 4 }),
        (
            "sim",
            ExecMode::Sim(SimScheduler::new(SchedulePolicy::RandomWalk { seed: 7 })),
        ),
    ]
}

/// Base seed for the sim-schedule matrix, overridable per CI row.
fn seed_base() -> u64 {
    std::env::var("SIM_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xA5EED)
}

fn config(mode: ExecMode, max_rounds: u64) -> DistConfig {
    DistConfig {
        mode,
        max_rounds,
        ..DistConfig::default()
    }
}

/// Runs `A` on `graph` under every executor of the matrix, requires every
/// run to reproduce the lockstep reference exactly, and returns the
/// reference outputs plus the last run's report.
fn assert_output_matrix<A: NodeAlgorithm>(
    graph: &DistGraph,
    inputs: &[u64],
    max_rounds: u64,
) -> (Vec<u64>, NetworkReport) {
    let rounds = effective_rounds::<A>(graph, max_rounds);
    let reference = simulate::<A>(graph, inputs, rounds).expect("reference simulation");
    let mut last_report = None;
    for (name, mode) in modes() {
        let (out, report) = run::<A>(graph, inputs, config(mode, max_rounds))
            .unwrap_or_else(|e| panic!("{}: {name} run failed: {e}", graph.name()));
        assert_eq!(
            out,
            reference,
            "{}: {name} outputs diverged from the lockstep reference",
            graph.name()
        );
        assert_eq!(
            report.processes_run,
            graph.n(),
            "{}: {name} ran the wrong number of node processes",
            graph.name()
        );
        last_report = Some(report);
    }
    (reference, last_report.expect("matrix is nonempty"))
}

/// Bipartite maximal matching: outputs agree across all five executors on
/// grids, paths, and random bipartite regular graphs, and every agreed
/// output is a valid maximal matching.
#[test]
fn bmm_outputs_identical_across_executors() {
    for g in [
        grid(4, 3).unwrap(),
        path(7).unwrap(),
        random_bipartite_regular(24, 3, 11).unwrap(),
    ] {
        let colors = g.bipartition().expect("graph family is bipartite");
        let (out, _) = assert_output_matrix::<Bmm>(&g, &colors, kpn::dist::DEFAULT_MAX_ROUNDS);
        let matched = check_matching(&g, &out)
            .unwrap_or_else(|e| panic!("{}: invalid matching: {e}", g.name()));
        assert!(matched > 0, "{}: empty matching cannot be maximal", g.name());
    }
}

/// Vertex-cover 3-approximation: outputs agree across executors on grids,
/// odd rings (not bipartite — the double cover handles that), and random
/// regular graphs, and every output is a valid cover within 3x optimum.
#[test]
fn mvc3_outputs_identical_across_executors() {
    for g in [
        grid(4, 4).unwrap(),
        ring(9).unwrap(),
        random_regular(16, 3, 5).unwrap(),
    ] {
        let inputs = vec![0u64; g.n()];
        let (out, _) = assert_output_matrix::<Mvc3>(&g, &inputs, kpn::dist::DEFAULT_MAX_ROUNDS);
        check_cover(&g, &out).unwrap_or_else(|e| panic!("{}: invalid cover: {e}", g.name()));
    }
}

/// The determinacy claim over *schedules*: 112 seeded random-walk
/// simulation schedules all reproduce the reference outputs for both
/// algorithms. (The exec-matrix test above samples one seed; this is the
/// quantified version the paper argues but never measures.)
#[test]
fn outputs_identical_across_112_seeded_schedules() {
    let bmm_g = random_bipartite_regular(16, 3, 3).unwrap();
    let bmm_in = bmm_g.bipartition().unwrap();
    let bmm_rounds = effective_rounds::<Bmm>(&bmm_g, kpn::dist::DEFAULT_MAX_ROUNDS);
    let bmm_ref = simulate::<Bmm>(&bmm_g, &bmm_in, bmm_rounds).unwrap();

    let mvc_g = grid(4, 3).unwrap();
    let mvc_in = vec![0u64; mvc_g.n()];
    let mvc_rounds = effective_rounds::<Mvc3>(&mvc_g, kpn::dist::DEFAULT_MAX_ROUNDS);
    let mvc_ref = simulate::<Mvc3>(&mvc_g, &mvc_in, mvc_rounds).unwrap();

    let base = seed_base();
    for i in 0..112u64 {
        let seed = base.wrapping_add(i);
        let sim = || {
            ExecMode::Sim(SimScheduler::new(SchedulePolicy::RandomWalk { seed }))
        };
        let (out, _) = run::<Bmm>(&bmm_g, &bmm_in, config(sim(), kpn::dist::DEFAULT_MAX_ROUNDS))
            .unwrap_or_else(|e| panic!("bmm seed {seed:#x}: {e}"));
        assert_eq!(out, bmm_ref, "bmm outputs diverged under seed {seed:#x}");
        let (out, _) = run::<Mvc3>(&mvc_g, &mvc_in, config(sim(), kpn::dist::DEFAULT_MAX_ROUNDS))
            .unwrap_or_else(|e| panic!("mvc3 seed {seed:#x}: {e}"));
        assert_eq!(out, mvc_ref, "mvc3 outputs diverged under seed {seed:#x}");
    }
}

/// Round-limit enforcement: gossip never halts on its own, so the
/// communication-round limit is the only thing stopping it. Every
/// executor must stop after exactly `R` rounds — outputs equal the
/// `R`-round partial reference (each node knows the max of its `R`-hop
/// neighborhood, nothing more) — and the shutdown must be clean: no true
/// deadlock reported by the monitor, every process run to completion.
#[test]
fn round_limit_halts_unbounded_algorithm_identically_everywhere() {
    let g = grid(5, 5).unwrap();
    let ids: Vec<u64> = (0..g.n() as u64).collect();
    const R: u64 = 4;

    // The limit genuinely truncates: the grid's diameter is 8, so 4
    // rounds cannot propagate the max everywhere...
    let partial = simulate::<GossipMax>(&g, &ids, R).unwrap();
    let full = simulate::<GossipMax>(&g, &ids, 8).unwrap();
    assert_ne!(partial, full, "R must cut propagation short");
    // ...but corner 24 (the max) has spread exactly 4 hops.
    let max = g.n() as u64 - 1;
    let reached = partial.iter().filter(|&&o| o == max).count();
    assert_eq!(reached, 15, "nodes within 4 hops of the max corner");

    let (out, report) = assert_output_matrix::<GossipMax>(&g, &ids, R);
    assert_eq!(out, partial);
    assert_eq!(report.monitor.true_deadlocks, 0, "halt must not look like deadlock");
    assert!(report.errors.is_empty(), "clean shutdown: {:?}", report.errors);
}

/// The channels are sized so round skew never trips the deadlock
/// monitor: on a feedback-heavy ring at minimum capacity, zero
/// artificial growths and zero true deadlocks across the matrix.
#[test]
fn round_sync_never_needs_monitor_intervention() {
    let g = ring(12).unwrap();
    let ids: Vec<u64> = (0..12).collect();
    for (name, mode) in modes() {
        let (_, report) = run::<GossipMax>(&g, &ids, config(mode, 6)).unwrap();
        assert_eq!(report.monitor.growths, 0, "{name}: channel growth");
        assert_eq!(report.monitor.true_deadlocks, 0, "{name}: deadlock");
    }
}

/// Generated topologies survive the static verifier at `Deny` — the
/// config default, so every run above already proves it; this pins the
/// property explicitly for one graph of each family.
#[test]
fn generated_topologies_are_lint_clean_at_deny() {
    for g in [
        ring(5).unwrap(),
        path(4).unwrap(),
        grid(3, 3).unwrap(),
        random_regular(10, 3, 2).unwrap(),
        random_bipartite_regular(12, 2, 9).unwrap(),
    ] {
        let ids: Vec<u64> = (0..g.n() as u64).collect();
        let cfg = DistConfig {
            lint: LintLevel::Deny,
            max_rounds: 3,
            ..DistConfig::default()
        };
        run::<GossipMax>(&g, &ids, cfg)
            .unwrap_or_else(|e| panic!("{}: rejected at Deny: {e}", g.name()));
    }
}

/// DOT round-trip composes with execution: importing an exported
/// topology yields the same graph, and running the import reproduces the
/// original's outputs (port numbering survives serialization).
#[test]
fn dot_round_trip_preserves_outputs() {
    let g = random_regular(14, 3, 21).unwrap();
    let back = DistGraph::from_dot(&g.to_dot()).unwrap();
    assert_eq!(g, back);
    let ids: Vec<u64> = (0..14).collect();
    let a = simulate::<GossipMax>(&g, &ids, 4).unwrap();
    let b = simulate::<GossipMax>(&back, &ids, 4).unwrap();
    assert_eq!(a, b);
}

/// 100k-node scaling on the pooled executor (release-mode CI job; run
/// with `--ignored`). One hundred thousand fiber processes and ~400k
/// channels on a 250×400 grid: per-node outputs must be bit-identical
/// across worker counts and equal to the lockstep reference.
#[test]
#[ignore = "release-scale: run via the CI dist job or --ignored"]
fn bmm_100k_grid_bit_identical_across_pooled_workers() {
    let g = grid(250, 400).unwrap();
    assert_eq!(g.n(), 100_000);
    let colors = g.bipartition().unwrap();
    let rounds = effective_rounds::<Bmm>(&g, kpn::dist::DEFAULT_MAX_ROUNDS);
    let reference = simulate::<Bmm>(&g, &colors, rounds).unwrap();
    for workers in [1, 2, 4] {
        let (out, report) = run::<Bmm>(
            &g,
            &colors,
            config(ExecMode::Pooled { workers }, kpn::dist::DEFAULT_MAX_ROUNDS),
        )
        .unwrap_or_else(|e| panic!("pooled:{workers}: {e}"));
        assert_eq!(out, reference, "pooled:{workers} diverged on 100k grid");
        assert_eq!(report.processes_run, 100_000);
        assert_eq!(report.monitor.true_deadlocks, 0);
    }
    check_matching(&g, &reference).expect("maximal matching on 100k grid");
}

/// The acceptance graph: BMM on a 100k-node random bipartite 3-regular
/// graph completes on the pooled executor with outputs equal to the
/// reference and forming a valid maximal matching.
#[test]
#[ignore = "release-scale: run via the CI dist job or --ignored"]
fn bmm_100k_random_graph_completes_on_pooled() {
    let g = random_bipartite_regular(100_000, 3, 0xD15C).unwrap();
    let colors = g.bipartition().unwrap();
    let rounds = effective_rounds::<Bmm>(&g, kpn::dist::DEFAULT_MAX_ROUNDS);
    let reference = simulate::<Bmm>(&g, &colors, rounds).unwrap();
    let (out, report) = run::<Bmm>(
        &g,
        &colors,
        config(ExecMode::Pooled { workers: 4 }, kpn::dist::DEFAULT_MAX_ROUNDS),
    )
    .expect("100k random bipartite run");
    assert_eq!(out, reference, "pooled:4 diverged on 100k random graph");
    assert_eq!(report.processes_run, 100_000);
    let matched = check_matching(&g, &out).expect("maximal matching");
    assert!(matched > 0);
}
