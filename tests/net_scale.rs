//! Reactor-backend scale soak: the whole point of the event-driven net
//! backend (ISSUE 9 / ROADMAP) is that a blocked remote channel costs a
//! parked fiber, not a compensated OS thread. This test opens over a
//! thousand loopback remote channels, blocks a reader fiber on every one
//! of them simultaneously, and asserts the process's OS thread count
//! never rises above `workers + small constant` — where the thread
//! backend would grow linearly (one compensation thread per blocked
//! read; see `crates/bench/src/bin/netscale.rs` for the measured
//! comparison recorded in `bench_results/BENCH_net.json`).
//!
//! Reactor-only (Linux x86_64, real fibers, not Miri); the backend
//! override is process-global, so this file holds exactly one test.

#![cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]

use kpn::core::exec::set_net_backend;
use kpn::core::{DataReader, DataWriter, Exec, NetBackend, PooledExec};
use kpn::net::{remote_reader, remote_writer, Acceptor};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Live OS threads in this process (main + test harness included).
fn os_threads() -> usize {
    std::fs::read_dir("/proc/self/task").unwrap().count()
}

#[test]
fn thousand_blocked_remote_reads_stay_on_the_worker_pool() {
    const CHANNELS: usize = 1100; // acceptance floor is 1k concurrent blocks
    const WORKERS: usize = 2;
    const SLACK: usize = 4;

    set_net_backend(Some(NetBackend::Reactor));
    let acceptor = Acceptor::bind("127.0.0.1:0").unwrap();
    let addr = acceptor.local_addr().to_string();

    // Baseline AFTER the acceptor (its accept loop is one thread) but
    // BEFORE the pool: the bound is baseline + workers + slack.
    let baseline = os_threads();
    let ex = PooledExec::new(WORKERS);

    let done = Arc::new(AtomicUsize::new(0));
    for i in 0..CHANNELS {
        let (acceptor, d) = (acceptor.clone(), done.clone());
        ex.spawn(
            &format!("rd{i}"),
            Box::new(move || {
                let mut r = DataReader::new(remote_reader(&acceptor, 0x5CA1E000 + i as u64));
                assert_eq!(r.read_i64().unwrap(), i as i64);
                d.fetch_add(1, Ordering::SeqCst);
            }),
        );
    }

    // Connect one writer per channel but send nothing yet: every reader
    // fiber adopts its connection, attempts the framed read, gets
    // WouldBlock, and parks on the reactor. Sample the thread count the
    // whole way — this connect storm is exactly when the thread backend
    // balloons.
    let mut peak = os_threads();
    let mut writers = Vec::with_capacity(CHANNELS);
    for i in 0..CHANNELS {
        writers.push(DataWriter::new(
            remote_writer(&addr, 0x5CA1E000 + i as u64).unwrap(),
        ));
        peak = peak.max(os_threads());
    }

    // Wait until every reader fd is registered with the reactor (i.e.
    // every reader has adopted its connection and parked on readiness),
    // still sampling.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        peak = peak.max(os_threads());
        let registered = ex
            .scheduler_stats()
            .and_then(|s| s.reactor)
            .map(|r| r.current_registered)
            .unwrap_or(0);
        if registered >= CHANNELS {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "only {registered}/{CHANNELS} reader fds reached the reactor"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    // Dwell with all channels blocked at once, still sampling.
    for _ in 0..50 {
        peak = peak.max(os_threads());
        std::thread::sleep(Duration::from_millis(1));
    }

    assert!(
        peak <= baseline + WORKERS + SLACK,
        "peak {peak} threads with {CHANNELS} blocked remote reads \
         (baseline {baseline} + {WORKERS} workers + {SLACK} slack exceeded)"
    );

    // Release every channel and let the run complete.
    for (i, w) in writers.iter_mut().enumerate() {
        w.write_i64(i as i64).unwrap();
        w.flush().unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    while done.load(Ordering::SeqCst) < CHANNELS {
        assert!(
            Instant::now() < deadline,
            "only {}/{CHANNELS} readers completed",
            done.load(Ordering::SeqCst)
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    drop(writers);
    ex.shutdown();
    set_net_backend(None);
}
