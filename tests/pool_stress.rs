//! Steal/park/unpark stress for the pooled executor's work-stealing
//! scheduler. These tests exist to be run under ThreadSanitizer (the CI
//! `tsan` job includes this file): they hammer exactly the lock-free edges
//! of the scheduler — hot-slot handoff, deque steals, the Dekker
//! sleep/wake handshake, and foreign-thread unparks — where a missing
//! fence shows up as a data race or a lost wakeup, not as a failed
//! assertion in calm tests.

use kpn::core::{blocking_region, Exec, PooledExec};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn wait_until(secs: u64, what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting: {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Rings of fibers passing a token by park/unpark, across enough keys and
/// workers that unparks constantly land on foreign workers' queues and
/// idle workers steal mid-handoff.
#[test]
fn park_unpark_rings_under_contention() {
    const RINGS: usize = 8;
    const HOPS: usize = 500;
    let ex = PooledExec::new(4);
    let done = Arc::new(AtomicUsize::new(0));
    for ring in 0..RINGS {
        // Two fibers per ring alternate on a shared counter: each waits
        // for the counter to reach its parity, bumps it, wakes the peer.
        let key = 0x9000 + ring * 0x40;
        let counter = Arc::new(AtomicUsize::new(0));
        for side in 0..2usize {
            let (e, c, d) = (ex.clone(), counter.clone(), done.clone());
            ex.spawn(
                &format!("ring{ring}-{side}"),
                Box::new(move || {
                    loop {
                        let mut v = c.load(Ordering::SeqCst);
                        while v < HOPS && v % 2 != side {
                            let token = e.park_token(key);
                            v = c.load(Ordering::SeqCst);
                            if v >= HOPS || v % 2 == side {
                                break;
                            }
                            e.park(key, token, None).unwrap();
                            v = c.load(Ordering::SeqCst);
                        }
                        if v >= HOPS {
                            break;
                        }
                        c.fetch_add(1, Ordering::SeqCst);
                        e.unpark_all(key);
                    }
                    e.unpark_all(key); // release a peer parked on the final hop
                    d.fetch_add(1, Ordering::SeqCst);
                }),
            );
        }
    }
    wait_until(60, "all rings complete", || {
        done.load(Ordering::SeqCst) == RINGS * 2
    });
    ex.shutdown();
}

/// Foreign threads (not pool workers) unparking pooled fibers force the
/// injector path and its producer-side Dekker check, racing the workers'
/// rescan-then-sleep consumer side.
#[test]
fn foreign_thread_unparks_race_worker_sleep() {
    const FIBERS: usize = 16;
    const ROUNDS: usize = 200;
    let ex = PooledExec::new(2);
    let done = Arc::new(AtomicUsize::new(0));
    let go = Arc::new(AtomicUsize::new(0));
    for i in 0..FIBERS {
        let key = 0xA000 + i * 0x20;
        let (e, d, g) = (ex.clone(), done.clone(), go.clone());
        ex.spawn(
            &format!("sleeper{i}"),
            Box::new(move || {
                for round in 1..=ROUNDS {
                    while g.load(Ordering::SeqCst) < round {
                        let token = e.park_token(key);
                        if g.load(Ordering::SeqCst) >= round {
                            break;
                        }
                        e.park(key, token, None).unwrap();
                    }
                }
                d.fetch_add(1, Ordering::SeqCst);
            }),
        );
    }
    let waker = {
        let ex = ex.clone();
        let done = done.clone();
        let go = go.clone();
        std::thread::spawn(move || {
            for round in 1..=ROUNDS {
                go.store(round, Ordering::SeqCst);
                for i in 0..FIBERS {
                    ex.unpark_all(0xA000 + i * 0x20);
                }
                if done.load(Ordering::SeqCst) == FIBERS {
                    return;
                }
                std::thread::yield_now();
            }
            // Keep waking until everyone has observed the final round:
            // unpark_all is cheap and the generation protocol makes
            // re-wakes harmless.
            while done.load(Ordering::SeqCst) < FIBERS {
                for i in 0..FIBERS {
                    ex.unpark_all(0xA000 + i * 0x20);
                }
                std::thread::yield_now();
            }
        })
    };
    wait_until(60, "all sleepers finish every round", || {
        done.load(Ordering::SeqCst) == FIBERS
    });
    waker.join().unwrap();
    ex.shutdown();
}

/// Blocking regions churning the worker set while other fibers keep
/// parking and unparking: compensation workers spawn, steal leftover work,
/// adopt freed slots, and retire — all while the run queues stay live.
/// (x86_64 only: compensation workers exist only with real fibers.)
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[test]
fn blocking_churn_with_live_queues() {
    const BLOCKERS: usize = 6;
    const WORKERS_TASKS: usize = 200;
    let ex = PooledExec::new(2);
    let done = Arc::new(AtomicUsize::new(0));
    for i in 0..BLOCKERS {
        let d = done.clone();
        ex.spawn(
            &format!("blocker{i}"),
            Box::new(move || {
                for _ in 0..5 {
                    blocking_region(|| std::thread::sleep(Duration::from_millis(2)));
                }
                d.fetch_add(1, Ordering::SeqCst);
            }),
        );
    }
    for i in 0..WORKERS_TASKS {
        let d = done.clone();
        ex.spawn(
            &format!("task{i}"),
            Box::new(move || {
                d.fetch_add(1, Ordering::SeqCst);
            }),
        );
    }
    wait_until(60, "blockers and tasks all finish", || {
        done.load(Ordering::SeqCst) == BLOCKERS + WORKERS_TASKS
    });
    // The compensation workers must have retired.
    wait_until(30, "pool back at configured size", || {
        let s = ex.scheduler_stats().expect("pooled stats");
        s.current_workers == s.target_workers
    });
    ex.shutdown();
}

/// The `blocked_workers` gauge and `current_workers` must be snapshotted
/// under one lock: a sampler racing blocking-region churn must never see
/// more blocked workers than workers alive (`enter_blocking` both marks
/// the blocker external *and* guarantees a compensation worker under the
/// same central lock, so the invariant holds at every instant — a torn
/// two-lock snapshot was the only way to violate it).
/// (x86_64 only: blocking regions compensate only with real fibers.)
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[test]
fn blocked_gauge_never_exceeds_alive_workers() {
    const BLOCKERS: usize = 8;
    const ROUNDS: usize = 40;
    let ex = PooledExec::new(2);
    let done = Arc::new(AtomicUsize::new(0));
    for i in 0..BLOCKERS {
        let d = done.clone();
        ex.spawn(
            &format!("churn{i}"),
            Box::new(move || {
                for _ in 0..ROUNDS {
                    blocking_region(|| std::thread::sleep(Duration::from_micros(300)));
                }
                d.fetch_add(1, Ordering::SeqCst);
            }),
        );
    }
    // Sample as fast as possible while the churn runs; every snapshot
    // must satisfy the invariant.
    let mut samples = 0u64;
    while done.load(Ordering::SeqCst) < BLOCKERS {
        let s = ex.scheduler_stats().expect("pooled stats");
        assert!(
            s.blocked_workers <= s.current_workers,
            "torn snapshot: {} blocked > {} alive after {samples} samples",
            s.blocked_workers,
            s.current_workers,
        );
        samples += 1;
    }
    assert!(samples > 0);
    ex.shutdown();
}
