//! Randomized-graph property test: build arbitrary acyclic pipelines from
//! stock processes (Scale / Modulo filters with random fan-out) with
//! random channel capacities, run them, and compare against a direct
//! sequential evaluation of the same dataflow. Every run must agree —
//! the determinacy theorem exercised over graph *structure*, not just
//! parameters.
//!
//! The second property deploys the same fuzzed pipelines *across a
//! cluster* and replays each one under pinned seeded fault schedules
//! (resets, refusals, stalls): the reconnection protocol must keep every
//! branch history identical to the fault-free reference, whatever graph
//! shape the fuzzer draws.

use kpn::core::stdlib::{Collect, Duplicate, Modulo, Scale, Sequence};
use kpn::core::{
    DataReader, DiagCode, Error, ExecMode, LintLevel, Network, NetworkConfig, SchedulePolicy,
    SimScheduler,
};
use kpn::dist::{self, DistGraph};
use kpn::net::chaos::{chaos_policy, ChaosCluster};
use kpn::net::{ChanId, FaultProfile, GraphBuilder};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// One stage of a random pipeline.
#[derive(Debug, Clone)]
enum Stage {
    /// Multiply by a constant.
    Scale(i64),
    /// Drop multiples of a divisor.
    Filter(i64),
}

fn stage_strategy() -> impl Strategy<Value = Stage> {
    prop_oneof![
        (-7i64..8)
            .prop_filter("nonzero", |v| *v != 0)
            .prop_map(Stage::Scale),
        (2i64..9).prop_map(Stage::Filter),
    ]
}

/// Reference evaluation of a branch.
fn eval(stages: &[Stage], input: &[i64]) -> Vec<i64> {
    let mut values = input.to_vec();
    for s in stages {
        values = match s {
            Stage::Scale(k) => values.iter().map(|v| v * k).collect(),
            Stage::Filter(d) => values.iter().copied().filter(|v| v % d != 0).collect(),
        };
    }
    values
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A random linear pipeline (possibly with a fan-out in the middle)
    /// produces exactly the reference result on every branch.
    #[test]
    fn random_pipelines_match_reference(
        head in proptest::collection::vec(stage_strategy(), 0..4),
        left in proptest::collection::vec(stage_strategy(), 0..4),
        right in proptest::collection::vec(stage_strategy(), 0..4),
        count in 1u64..200,
        capacity in 8usize..512,
    ) {
        let input: Vec<i64> = (1..=count as i64).collect();
        let net = Network::new();
        // source → head stages → duplicate → (left stages, right stages)
        let (src_w, src_r) = net.channel_with_capacity(capacity);
        net.add(Sequence::new(1, count, src_w));
        let mut cursor = src_r;
        for s in &head {
            let (w, r) = net.channel_with_capacity(capacity);
            match s {
                Stage::Scale(k) => net.add(Scale::new(*k, cursor, w)),
                Stage::Filter(d) => net.add(Modulo::new(*d, cursor, w)),
            }
            cursor = r;
        }
        let (lw, lr) = net.channel_with_capacity(capacity);
        let (rw, rr) = net.channel_with_capacity(capacity);
        net.add(Duplicate::two(cursor, lw, rw));
        let wire_branch = |stages: &[Stage], mut cursor: kpn::core::ChannelReader| {
            for s in stages {
                let (w, r) = net.channel_with_capacity(capacity);
                match s {
                    Stage::Scale(k) => net.add(Scale::new(*k, cursor, w)),
                    Stage::Filter(d) => net.add(Modulo::new(*d, cursor, w)),
                }
                cursor = r;
            }
            let out = Arc::new(Mutex::new(Vec::new()));
            net.add(Collect::new(cursor, out.clone()));
            out
        };
        let left_out = wire_branch(&left, lr);
        let right_out = wire_branch(&right, rr);
        net.run().unwrap();

        let after_head = eval(&head, &input);
        prop_assert_eq!(&*left_out.lock().unwrap(), &eval(&left, &after_head));
        prop_assert_eq!(&*right_out.lock().unwrap(), &eval(&right, &after_head));
    }
}

/// Deploys the fuzzed pipeline across `cluster` (stages alternate between
/// the two servers, so every stage boundary that lands on a partition cut
/// becomes a network channel) and returns both branch histories.
fn run_distributed(
    cluster: &ChaosCluster,
    head: &[Stage],
    left: &[Stage],
    right: &[Stage],
    count: u64,
) -> (Vec<i64>, Vec<i64>) {
    fn wire(b: &mut GraphBuilder, stages: &[Stage], mut cursor: ChanId, partition: usize) -> ChanId {
        for s in stages {
            let out = b.channel();
            match s {
                Stage::Scale(k) => b.add(partition, "Scale", k, &[cursor], &[out]).unwrap(),
                Stage::Filter(d) => b.add(partition, "Modulo", d, &[cursor], &[out]).unwrap(),
            }
            cursor = out;
        }
        cursor
    }
    fn drain(reader: kpn::core::ChannelReader) -> Vec<i64> {
        let mut r = DataReader::new(reader);
        let mut out = Vec::new();
        loop {
            match r.read_i64() {
                Ok(v) => out.push(v),
                Err(Error::Eof) => return out,
                Err(e) => panic!("branch stream failed mid-drain: {e}"),
            }
        }
    }

    let mut b = GraphBuilder::new();
    let src = b.channel();
    b.add(0, "Sequence", &(1i64, Some(count)), &[], &[src])
        .unwrap();
    let mut cursor = src;
    for (i, s) in head.iter().enumerate() {
        let out = b.channel();
        let p = i % 2;
        match s {
            Stage::Scale(k) => b.add(p, "Scale", k, &[cursor], &[out]).unwrap(),
            Stage::Filter(d) => b.add(p, "Modulo", d, &[cursor], &[out]).unwrap(),
        }
        cursor = out;
    }
    let l = b.channel();
    let r = b.channel();
    b.add(0, "Duplicate", &(), &[cursor], &[l, r]).unwrap();
    let left_end = wire(&mut b, left, l, 0);
    let right_end = wire(&mut b, right, r, 1);
    b.claim_reader(left_end).unwrap();
    b.claim_reader(right_end).unwrap();
    let mut dep = b.deploy(cluster.client(), cluster.handles()).unwrap();
    let lv = drain(dep.readers.remove(&left_end).unwrap());
    let rv = drain(dep.readers.remove(&right_end).unwrap());
    dep.join().unwrap();
    (lv, rv)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Every fuzzed pipeline, deployed across a cluster, yields the
    /// reference histories both fault-free and under three pinned fault
    /// schedules.
    #[test]
    fn random_pipelines_survive_fault_schedules(
        head in proptest::collection::vec(stage_strategy(), 0..3),
        left in proptest::collection::vec(stage_strategy(), 0..3),
        right in proptest::collection::vec(stage_strategy(), 0..3),
        count in 1u64..80,
    ) {
        let input: Vec<i64> = (1..=count as i64).collect();
        let after_head = eval(&head, &input);
        let want_left = eval(&left, &after_head);
        let want_right = eval(&right, &after_head);

        // Fault-free distributed baseline.
        let plain = ChaosCluster::plain(2).unwrap();
        let (lv, rv) = run_distributed(&plain, &head, &left, &right, count);
        prop_assert_eq!(&lv, &want_left);
        prop_assert_eq!(&rv, &want_right);
        drop(plain);

        // The same graph under pinned fault schedules.
        for seed in [0xFA_0001u64, 0xFA_0002, 0xFA_0003] {
            let profile = FaultProfile {
                mean_ops_between_faults: 15,
                refuse_connects: 1,
                max_faults: 6,
                ..FaultProfile::default()
            };
            let cluster = ChaosCluster::with_faults(2, seed, profile, chaos_policy()).unwrap();
            let (lv, rv) = run_distributed(&cluster, &head, &left, &right, count);
            prop_assert_eq!(&lv, &want_left, "left branch diverged under seed {:#x}", seed);
            prop_assert_eq!(&rv, &want_right, "right branch diverged under seed {:#x}", seed);
        }
    }
}

/// Builds the same fuzzed pipeline shape as `random_pipelines_match_reference`
/// into `net`, returning the two branch collectors.
#[allow(clippy::type_complexity)]
fn build_pipeline(
    net: &Network,
    head: &[Stage],
    left: &[Stage],
    right: &[Stage],
    count: u64,
    capacity: usize,
) -> (Arc<Mutex<Vec<i64>>>, Arc<Mutex<Vec<i64>>>) {
    let (src_w, src_r) = net.channel_with_capacity(capacity);
    net.add(Sequence::new(1, count, src_w));
    let mut cursor = src_r;
    for s in head {
        let (w, r) = net.channel_with_capacity(capacity);
        match s {
            Stage::Scale(k) => net.add(Scale::new(*k, cursor, w)),
            Stage::Filter(d) => net.add(Modulo::new(*d, cursor, w)),
        }
        cursor = r;
    }
    let (lw, lr) = net.channel_with_capacity(capacity);
    let (rw, rr) = net.channel_with_capacity(capacity);
    net.add(Duplicate::two(cursor, lw, rw));
    let wire_branch = |stages: &[Stage], mut cursor: kpn::core::ChannelReader| {
        for s in stages {
            let (w, r) = net.channel_with_capacity(capacity);
            match s {
                Stage::Scale(k) => net.add(Scale::new(*k, cursor, w)),
                Stage::Filter(d) => net.add(Modulo::new(*d, cursor, w)),
            }
            cursor = r;
        }
        let out = Arc::new(Mutex::new(Vec::new()));
        net.add(Collect::new(cursor, out.clone()));
        out
    };
    (wire_branch(left, lr), wire_branch(right, rr))
}

/// A topology drawn from *every* `kpn::dist` generator with fuzzed
/// parameters: rings, paths, grids, random d-regular (parity-corrected
/// so n·d is even), and random bipartite d-regular graphs.
fn topology_strategy() -> impl Strategy<Value = DistGraph> {
    prop_oneof![
        (3usize..24).prop_map(|n| dist::ring(n).unwrap()),
        (2usize..24).prop_map(|n| dist::path(n).unwrap()),
        (1usize..6, 1usize..6)
            .prop_filter("need two nodes", |(w, h)| w * h >= 2)
            .prop_map(|(w, h)| dist::grid(w, h).unwrap()),
        (6usize..20, 1usize..4, 0u64..1000).prop_map(|(n, d, seed)| {
            let n = if n * d % 2 == 1 { n + 1 } else { n };
            dist::random_regular(n, d, seed).unwrap()
        }),
        (2usize..12, 1usize..4, 0u64..1000).prop_map(|(half, d, seed)| {
            let d = d.min(half);
            dist::random_bipartite_regular(2 * half, d, seed).unwrap()
        }),
    ]
}

fn deny_network() -> Network {
    Network::with_config(NetworkConfig {
        lint: LintLevel::Deny,
        ..NetworkConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A fuzzed pipeline that passes lint at `Deny` never reaches the
    /// deadlock monitor's structural-abort verdict: static cleanliness
    /// implies the run completes (the verifier's soundness direction over
    /// this graph family).
    #[test]
    fn lint_clean_graphs_never_deadlock(
        head in proptest::collection::vec(stage_strategy(), 0..4),
        left in proptest::collection::vec(stage_strategy(), 0..4),
        right in proptest::collection::vec(stage_strategy(), 0..4),
        count in 1u64..100,
        capacity in 8usize..256,
    ) {
        let net = deny_network();
        let (left_out, right_out) = build_pipeline(&net, &head, &left, &right, count, capacity);
        match net.run() {
            Ok(_) => {}
            Err(Error::Lint(diags)) => {
                // The graph family is fully wired, so lint must accept it.
                prop_assert!(false, "clean pipeline rejected by lint: {diags:?}");
            }
            Err(Error::Deadlocked) => {
                prop_assert!(false, "lint-clean pipeline hit structural deadlock");
            }
            Err(e) => prop_assert!(false, "unexpected failure: {e}"),
        }
        let input: Vec<i64> = (1..=count as i64).collect();
        let after_head = eval(&head, &input);
        prop_assert_eq!(&*left_out.lock().unwrap(), &eval(&left, &after_head));
        prop_assert_eq!(&*right_out.lock().unwrap(), &eval(&right, &after_head));
    }

    /// Seeding an L001 defect (a writer endpoint that no process ever
    /// receives) into an otherwise-clean fuzzed pipeline is always caught
    /// at `Deny`, whatever the surrounding graph shape.
    #[test]
    fn seeded_dangling_writer_always_flagged(
        head in proptest::collection::vec(stage_strategy(), 0..4),
        count in 1u64..50,
        capacity in 8usize..256,
    ) {
        let net = deny_network();
        let (left_out, right_out) = build_pipeline(&net, &head, &[], &[], count, capacity);
        // The defect: this channel's reader feeds a Collect, but the
        // writer stays in the test harness, undeclared — its consumer
        // would block forever.
        let (dangling_w, dangling_r) = net.channel_with_capacity(capacity);
        let orphan_out = Arc::new(Mutex::new(Vec::new()));
        net.add(Collect::new(dangling_r, orphan_out.clone()));
        let err = net.run().expect_err("dangling writer must fail lint");
        match err {
            Error::Lint(diags) => {
                prop_assert!(
                    diags.iter().any(|d| d.code == DiagCode::L001),
                    "expected L001 in {diags:?}"
                );
            }
            other => prop_assert!(false, "expected lint error, got {other}"),
        }
        drop(dangling_w);
        let _ = (left_out, right_out);
    }

    /// Graphviz DOT round-trips exactly over the whole fuzzed topology
    /// family: import(export(g)) is `g` — same name, same node count,
    /// same edges in the same order (port numbering is part of the
    /// contract: a reordered edge list would renumber ports and change
    /// which channel carries which message).
    #[test]
    fn dot_import_export_import_is_identity(g in topology_strategy()) {
        let dot = g.to_dot();
        let back = DistGraph::from_dot(&dot).unwrap();
        prop_assert_eq!(&back, &g, "first round trip changed the graph");
        let dot2 = back.to_dot();
        prop_assert_eq!(&dot2, &dot, "export is not stable across a round trip");
        prop_assert_eq!(&DistGraph::from_dot(&dot2).unwrap(), &g);
    }

    /// Every generated topology, expressed as a round-synchronous KPN,
    /// passes the static verifier at `Deny` and runs to a clean halt:
    /// no dangling endpoints (L001), no undercapacitated cycles (L003),
    /// no orphan processes (L004) — for every generator, whatever
    /// parameters the fuzzer draws.
    #[test]
    fn fuzzed_topologies_are_lint_clean_at_deny(g in topology_strategy(), rounds in 1u64..4) {
        let ids: Vec<u64> = (0..g.n() as u64).collect();
        let cfg = dist::DistConfig {
            lint: LintLevel::Deny,
            max_rounds: rounds,
            ..dist::DistConfig::default()
        };
        match dist::run::<dist::GossipMax>(&g, &ids, cfg) {
            Ok((out, report)) => {
                prop_assert_eq!(out, dist::simulate::<dist::GossipMax>(&g, &ids, rounds).unwrap());
                prop_assert_eq!(report.monitor.true_deadlocks, 0);
            }
            Err(Error::Lint(diags)) => {
                prop_assert!(false, "{} rejected at Deny: {diags:?}", g.name());
            }
            Err(e) => prop_assert!(false, "{} failed: {e}", g.name()),
        }
    }

    /// Seeding an L003 defect (a feedback loop whose channels cannot hold
    /// one declared token) is always caught at `Deny`.
    #[test]
    fn seeded_tiny_cycle_always_flagged(
        head in proptest::collection::vec(stage_strategy(), 0..4),
        count in 1u64..50,
        capacity in 8usize..256,
        tiny in 1usize..8,
    ) {
        let net = deny_network();
        let (left_out, right_out) = build_pipeline(&net, &head, &[], &[], count, capacity);
        // The defect: two Scale processes in a loop over channels smaller
        // than one 8-byte token.
        let (aw, ar) = net.channel_with_capacity(tiny);
        let (bw, br) = net.channel_with_capacity(tiny);
        net.add(Scale::new(1, ar, bw));
        net.add(Scale::new(1, br, aw));
        let err = net.run().expect_err("undersized cycle must fail lint");
        match err {
            Error::Lint(diags) => {
                prop_assert!(
                    diags.iter().any(|d| d.code == DiagCode::L003),
                    "expected L003 in {diags:?}"
                );
            }
            other => prop_assert!(false, "expected lint error, got {other}"),
        }
        let _ = (left_out, right_out);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Capacity synthesis soundness over fuzzed *static* pipelines: every
    /// stage of this family declares SDF rates, so the lint pass can
    /// synthesize schedule-derived capacities for the whole graph. With
    /// `synthesize_capacities` the fixed graph must pass the `Deny` gate
    /// (lint-clean after fix), produce the reference output, and never
    /// fall back to the monitor's runtime grow loop — on the thread,
    /// pooled, and sim executors alike.
    #[test]
    fn synthesized_static_pipelines_never_grow(
        scales in proptest::collection::vec(2i64..9, 0..5),
        count in 1u64..60,
        capacity in 1usize..24,
    ) {
        kpn::lint::install();
        let modes: [&dyn Fn() -> ExecMode; 3] = [
            &|| ExecMode::Thread,
            &|| ExecMode::Pooled { workers: 2 },
            &|| ExecMode::Sim(SimScheduler::new(SchedulePolicy::RandomWalk { seed: 11 })),
        ];
        let factor: i64 = scales.iter().product();
        let expect: Vec<i64> = (1..=count as i64).map(|v| v * factor).collect();
        for mode in modes {
            let net = Network::with_config(NetworkConfig {
                lint: LintLevel::Deny,
                synthesize_capacities: true,
                mode: mode(),
                ..NetworkConfig::default()
            });
            let (w, r) = net.channel_with_capacity(capacity);
            net.add(Sequence::new(1, count, w));
            let mut cursor = r;
            for k in &scales {
                let (sw, sr) = net.channel_with_capacity(capacity);
                net.add(Scale::new(*k, cursor, sw));
                cursor = sr;
            }
            let out = Arc::new(Mutex::new(Vec::new()));
            net.add(Collect::new(cursor, out.clone()));
            net.run().unwrap();
            prop_assert_eq!(&*out.lock().unwrap(), &expect);
            prop_assert_eq!(
                net.monitor().stats().capacity_grows,
                0,
                "synthesized static pipeline grew at runtime"
            );
        }
    }
}
