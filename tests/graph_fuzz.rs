//! Randomized-graph property test: build arbitrary acyclic pipelines from
//! stock processes (Scale / Modulo filters with random fan-out) with
//! random channel capacities, run them, and compare against a direct
//! sequential evaluation of the same dataflow. Every run must agree —
//! the determinacy theorem exercised over graph *structure*, not just
//! parameters.

use kpn::core::stdlib::{Collect, Duplicate, Modulo, Scale, Sequence};
use kpn::core::Network;
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// One stage of a random pipeline.
#[derive(Debug, Clone)]
enum Stage {
    /// Multiply by a constant.
    Scale(i64),
    /// Drop multiples of a divisor.
    Filter(i64),
}

fn stage_strategy() -> impl Strategy<Value = Stage> {
    prop_oneof![
        (-7i64..8)
            .prop_filter("nonzero", |v| *v != 0)
            .prop_map(Stage::Scale),
        (2i64..9).prop_map(Stage::Filter),
    ]
}

/// Reference evaluation of a branch.
fn eval(stages: &[Stage], input: &[i64]) -> Vec<i64> {
    let mut values = input.to_vec();
    for s in stages {
        values = match s {
            Stage::Scale(k) => values.iter().map(|v| v * k).collect(),
            Stage::Filter(d) => values.iter().copied().filter(|v| v % d != 0).collect(),
        };
    }
    values
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A random linear pipeline (possibly with a fan-out in the middle)
    /// produces exactly the reference result on every branch.
    #[test]
    fn random_pipelines_match_reference(
        head in proptest::collection::vec(stage_strategy(), 0..4),
        left in proptest::collection::vec(stage_strategy(), 0..4),
        right in proptest::collection::vec(stage_strategy(), 0..4),
        count in 1u64..200,
        capacity in 8usize..512,
    ) {
        let input: Vec<i64> = (1..=count as i64).collect();
        let net = Network::new();
        // source → head stages → duplicate → (left stages, right stages)
        let (src_w, src_r) = net.channel_with_capacity(capacity);
        net.add(Sequence::new(1, count, src_w));
        let mut cursor = src_r;
        for s in &head {
            let (w, r) = net.channel_with_capacity(capacity);
            match s {
                Stage::Scale(k) => net.add(Scale::new(*k, cursor, w)),
                Stage::Filter(d) => net.add(Modulo::new(*d, cursor, w)),
            }
            cursor = r;
        }
        let (lw, lr) = net.channel_with_capacity(capacity);
        let (rw, rr) = net.channel_with_capacity(capacity);
        net.add(Duplicate::two(cursor, lw, rw));
        let wire_branch = |stages: &[Stage], mut cursor: kpn::core::ChannelReader| {
            for s in stages {
                let (w, r) = net.channel_with_capacity(capacity);
                match s {
                    Stage::Scale(k) => net.add(Scale::new(*k, cursor, w)),
                    Stage::Filter(d) => net.add(Modulo::new(*d, cursor, w)),
                }
                cursor = r;
            }
            let out = Arc::new(Mutex::new(Vec::new()));
            net.add(Collect::new(cursor, out.clone()));
            out
        };
        let left_out = wire_branch(&left, lr);
        let right_out = wire_branch(&right, rr);
        net.run().unwrap();

        let after_head = eval(&head, &input);
        prop_assert_eq!(&*left_out.lock().unwrap(), &eval(&left, &after_head));
        prop_assert_eq!(&*right_out.lock().unwrap(), &eval(&right, &after_head));
    }
}
