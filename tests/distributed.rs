//! Integration tests for the distributed layer (§4): multi-server
//! deployments over real TCP loopback, automatic connection establishment,
//! decentralized redirect, distributed termination, and the distributed
//! factorization application.

use kpn::bignum::{make_weak_key, SearchOutcome};
use kpn::core::{DataReader, DataWriter};
use kpn::net::{GraphBuilder, Node, ProcessRegistry, ServerHandle, TaskRegistry, CLIENT};
use kpn::parallel::distributed::names;
use kpn::parallel::{
    factor_task_stream, register_parallel_processes, register_stock_tasks, TaskEnvelope,
    TaskTypeRegistry,
};
use kpn_codec::{ObjectReader, ObjectWriter};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn parallel_node() -> (Arc<Node>, ServerHandle) {
    let mut tasks = TaskTypeRegistry::new();
    register_stock_tasks(&mut tasks);
    let tasks = tasks.into_shared();
    let mut reg = ProcessRegistry::with_defaults();
    register_parallel_processes(&mut reg, tasks);
    let node = Node::serve_with("127.0.0.1:0", reg, TaskRegistry::new()).unwrap();
    let handle = ServerHandle::new(node.addr().to_string());
    (node, handle)
}

#[test]
fn fibonacci_partitioned_across_three_servers() {
    // Figure 15's topology: the graph lives on servers A, B, C; the
    // client only receives the printed stream.
    let client = Node::serve("127.0.0.1:0").unwrap();
    let (_a, ha) = parallel_node();
    let (_b, hb) = parallel_node();
    let (_c, hc) = parallel_node();
    let mut g = GraphBuilder::new();
    let ab = g.channel();
    let be = g.channel();
    let cd = g.channel();
    let df = g.channel();
    let ed = g.channel();
    let eg = g.channel();
    let fg = g.channel();
    let fh = g.channel();
    let gb = g.channel();
    g.add(0, "Constant", &(1i64, Some(1u64)), &[], &[ab])
        .unwrap();
    g.add(0, "Cons", &false, &[ab, gb], &[be]).unwrap();
    g.add(2, "Duplicate", &(), &[be], &[ed, eg]).unwrap();
    g.add(0, "Add", &(), &[eg, fg], &[gb]).unwrap();
    g.add(0, "Constant", &(1i64, Some(1u64)), &[], &[cd])
        .unwrap();
    g.add(0, "Cons", &false, &[cd, ed], &[df]).unwrap();
    g.add(1, "Duplicate", &(), &[df], &[fh, fg]).unwrap();
    g.claim_reader(fh).unwrap();
    let mut dep = g.deploy(&client, &[ha, hb, hc]).unwrap();

    let mut r = DataReader::new(dep.readers.remove(&fh).unwrap());
    let expect = kpn::core::graphs::fibonacci_reference(25);
    for (i, e) in expect.iter().enumerate() {
        assert_eq!(r.read_i64().unwrap(), *e, "fib {i}");
    }
    // Close the client reader: the cascade must terminate every partition
    // on every server ("no remote processes are left running", §3.4).
    drop(r);
    dep.join().unwrap();
}

#[test]
fn distributed_factorization_with_remote_workers() {
    // §5.2 at demo scale: producer/consumer on the client, four workers
    // split across two servers under dynamic load balancing. The routing
    // stages (Direct / Turnstile / Select) stay on the client.
    let mut rng = StdRng::seed_from_u64(0xD15C0);
    const BATCH: u64 = 32;
    const TASKS: u64 = 24;
    let d = (TASKS * 3 / 4) * 2 * BATCH + 10;
    let key = make_weak_key(128, d - (d % 2), &mut rng);

    let client_tasks = {
        let mut t = TaskTypeRegistry::new();
        register_stock_tasks(&mut t);
        t.into_shared()
    };
    let mut client_reg = ProcessRegistry::with_defaults();
    register_parallel_processes(&mut client_reg, client_tasks);
    let client = Node::serve_with("127.0.0.1:0", client_reg, TaskRegistry::new()).unwrap();
    let (_s0, h0) = parallel_node();
    let (_s1, h1) = parallel_node();

    let mut g = GraphBuilder::new();
    let tasks_ch = g.channel();
    let results_ch = g.channel();
    let mut to_w = Vec::new();
    let mut from_w = Vec::new();
    for i in 0..4usize {
        let t = g.channel();
        let f = g.channel();
        let server = i % 2;
        g.add(server, names::WORKER, &1.0f64, &[t], &[f]).unwrap();
        to_w.push(t);
        from_w.push(f);
    }
    // Index plumbing on the client.
    let init = g.channel();
    let t_idx = g.channel();
    let idx_full = g.channel();
    let idx_direct = g.channel();
    let idx_select = g.channel();
    let t_data = g.channel();
    g.add(CLIENT, "Sequence", &(0i64, Some(4u64)), &[], &[init])
        .unwrap();
    g.add(CLIENT, "Cons", &false, &[init, t_idx], &[idx_full])
        .unwrap();
    g.add(
        CLIENT,
        "Duplicate",
        &(),
        &[idx_full],
        &[idx_direct, idx_select],
    )
    .unwrap();
    g.add(CLIENT, names::DIRECT, &(), &[tasks_ch, idx_direct], &to_w)
        .unwrap();
    g.add(CLIENT, names::TURNSTILE, &(), &from_w, &[t_data, t_idx])
        .unwrap();
    g.add(
        CLIENT,
        names::SELECT,
        &4u64,
        &[t_data, idx_select],
        &[results_ch],
    )
    .unwrap();
    g.claim_writer(tasks_ch).unwrap();
    g.claim_reader(results_ch).unwrap();

    let mut dep = g.deploy(&client, &[h0, h1]).unwrap();
    let mut task_out = ObjectWriter::new(dep.writers.remove(&tasks_ch).unwrap());
    let mut result_in = ObjectReader::new(dep.readers.remove(&results_ch).unwrap());

    // Feed tasks from the client.
    let feeder = std::thread::spawn(move || {
        let mut stream = factor_task_stream(key.n.clone(), TASKS, BATCH);
        while let Ok(Some(env)) = stream() {
            if task_out.write(&env).is_err() {
                break; // network already terminated (factor found)
            }
        }
    });

    // Consume until the factor appears.
    let found;
    loop {
        let env: TaskEnvelope = result_in.read().unwrap();
        match env.unpack::<SearchOutcome>().unwrap() {
            SearchOutcome::Found { p, d } => {
                found = Some((p, d));
                break;
            }
            SearchOutcome::NotFound => continue,
        }
    }
    let (p, d_found) = found.unwrap();
    let q = p.add_u64(d_found);
    assert_eq!(p.mul(&q), make_weak_key_n(0xD15C0, TASKS, BATCH));
    drop(result_in); // stop everything
    feeder.join().unwrap();
    dep.join().unwrap();
}

/// Recomputes the modulus deterministically (same seed path as the test).
fn make_weak_key_n(seed: u64, tasks: u64, batch: u64) -> kpn::bignum::BigUint {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = (tasks * 3 / 4) * 2 * batch + 10;
    make_weak_key(128, d - (d % 2), &mut rng).n
}

#[test]
fn rmi_style_task_execution() {
    // §4.1's Server.run(Task): ship a one-shot factor task to a server
    // and get the result back synchronously.
    let mut tasks = TaskRegistry::new();
    tasks.register(
        "factor_range",
        |(n, lo, hi): (kpn::bignum::BigUint, u64, u64)| Ok(kpn::bignum::search_range(&n, lo, hi)),
    );
    let node = Node::serve_with("127.0.0.1:0", ProcessRegistry::with_defaults(), tasks).unwrap();
    let handle = ServerHandle::new(node.addr().to_string());
    let mut rng = StdRng::seed_from_u64(3);
    let key = make_weak_key(96, 100, &mut rng);
    let hit: SearchOutcome = handle
        .run_task("factor_range", &(key.n.clone(), 64u64, 128u64))
        .unwrap();
    assert!(matches!(hit, SearchOutcome::Found { .. }));
    let miss: SearchOutcome = handle
        .run_task("factor_range", &(key.n, 128u64, 256u64))
        .unwrap();
    assert_eq!(miss, SearchOutcome::NotFound);
}

#[test]
fn client_feeds_and_drains_remote_pipeline() {
    // Bidirectional client endpoints: client writer → remote Scale chain
    // on two servers → client reader.
    let client = Node::serve("127.0.0.1:0").unwrap();
    let (_s0, h0) = parallel_node();
    let (_s1, h1) = parallel_node();
    let mut g = GraphBuilder::new();
    let input = g.channel();
    let mid = g.channel();
    let output = g.channel();
    g.add(0, "Scale", &3i64, &[input], &[mid]).unwrap();
    g.add(1, "Scale", &5i64, &[mid], &[output]).unwrap();
    g.claim_writer(input).unwrap();
    g.claim_reader(output).unwrap();
    let mut dep = g.deploy(&client, &[h0, h1]).unwrap();
    let mut w = DataWriter::new(dep.writers.remove(&input).unwrap());
    let mut r = DataReader::new(dep.readers.remove(&output).unwrap());
    for i in 0..100 {
        w.write_i64(i).unwrap();
    }
    drop(w);
    for i in 0..100 {
        assert_eq!(r.read_i64().unwrap(), i * 15);
    }
    assert!(r.read_i64().is_err());
    drop(r);
    dep.join().unwrap();
}

#[test]
fn sieve_with_remote_sift() {
    // Dynamic reconfiguration on a REMOTE server: the Sift process spawns
    // Modulo processes into the server's network at run time (§3.3 + §4).
    let client = Node::serve("127.0.0.1:0").unwrap();
    let (_s0, h0) = parallel_node();
    let mut g = GraphBuilder::new();
    let seq = g.channel();
    let primes = g.channel();
    g.add(0, "Sequence", &(2i64, Some(98u64)), &[], &[seq])
        .unwrap();
    g.add(0, "Sift", &(), &[seq], &[primes]).unwrap();
    g.claim_reader(primes).unwrap();
    let mut dep = g.deploy(&client, &[h0]).unwrap();
    let mut r = DataReader::new(dep.readers.remove(&primes).unwrap());
    let expect = kpn::core::graphs::primes_reference(100);
    for e in &expect {
        assert_eq!(r.read_i64().unwrap(), *e);
    }
    assert!(r.read_i64().is_err());
    drop(r);
    dep.join().unwrap();
}

#[test]
fn server_decomposes_and_redistributes_composite() {
    // §4: the client ships the WHOLE Fibonacci graph to server A with two
    // helper servers; A decomposes it, keeps a share, and redistributes
    // the rest — while the result channel still flows back to the client.
    use kpn::net::{ChannelSpec, GraphSpec, InputSpec, OutputSpec, ProcessSpec};

    let client = Node::serve("127.0.0.1:0").unwrap();
    let (_a, ha) = parallel_node();
    let (_b, hb) = parallel_node();
    let (_c, hc) = parallel_node();

    // Build the raw GraphSpec for Figure 6 (channels 0..=8, result via a
    // remote endpoint back to the client; channel 7 is left unused).
    let token: u64 = rand::random();

    fn enc<T: serde::Serialize>(v: &T) -> Vec<u8> {
        kpn_codec::to_bytes(v).unwrap()
    }
    let spec = GraphSpec {
        channels: (0..9).map(|_| ChannelSpec { capacity: 8192 }).collect(),
        processes: vec![
            ProcessSpec {
                type_name: "Constant".into(),
                params: enc(&(1i64, Some(1u64))),
                inputs: vec![],
                outputs: vec![OutputSpec::Local(0)], // ab
            },
            ProcessSpec {
                type_name: "Cons".into(),
                params: enc(&false),
                inputs: vec![InputSpec::Local(0), InputSpec::Local(8)], // ab, gb
                outputs: vec![OutputSpec::Local(1)],                    // be
            },
            ProcessSpec {
                type_name: "Duplicate".into(),
                params: enc(&()),
                inputs: vec![InputSpec::Local(1)], // be
                outputs: vec![OutputSpec::Local(4), OutputSpec::Local(5)], // ed, eg
            },
            ProcessSpec {
                type_name: "Add".into(),
                params: enc(&()),
                inputs: vec![InputSpec::Local(5), InputSpec::Local(6)], // eg, fg
                outputs: vec![OutputSpec::Local(8)],                    // gb
            },
            ProcessSpec {
                type_name: "Constant".into(),
                params: enc(&(1i64, Some(1u64))),
                inputs: vec![],
                outputs: vec![OutputSpec::Local(2)], // cd
            },
            ProcessSpec {
                type_name: "Cons".into(),
                params: enc(&false),
                inputs: vec![InputSpec::Local(2), InputSpec::Local(4)], // cd, ed
                outputs: vec![OutputSpec::Local(3)],                    // df
            },
            ProcessSpec {
                type_name: "Duplicate".into(),
                params: enc(&()),
                inputs: vec![InputSpec::Local(3)], // df
                outputs: vec![
                    OutputSpec::Remote {
                        addr: client.addr().to_string(),
                        token,
                    }, // fh → client
                    OutputSpec::Local(6), // fg
                ],
            },
        ],
    };
    let mut results = DataReader::new(client.remote_reader(token));
    ha.run_graph_redistributed(spec, &[hb.addr(), hc.addr()])
        .unwrap();
    let expect = kpn::core::graphs::fibonacci_reference(20);
    for (i, e) in expect.iter().enumerate() {
        assert_eq!(results.read_i64().unwrap(), *e, "fib {i}");
    }
    drop(results);
    for h in [&ha, &hb, &hc] {
        h.wait_idle().unwrap();
    }
}
