//! Integration tests for the §6 "future work" features implemented in
//! this reproduction:
//!
//! * §6.2 — distributed deadlock detection: a cross-machine read cycle
//!   that no local monitor may abort (remote reads are unverifiable) is
//!   detected by the [`ClusterProbe`] and resolved by a cluster-wide
//!   abort;
//! * §6.1 — migrating endpoints after execution has begun: a producer's
//!   write endpoint moves to another node mid-stream via the redirect
//!   protocol, with no byte lost, duplicated, or reordered.

use kpn::core::{DataReader, DataWriter};
use kpn::net::{ClusterProbe, GraphBuilder, Node, RemoteSink, ServerHandle};
use std::time::Duration;

fn node() -> (std::sync::Arc<Node>, ServerHandle) {
    let n = Node::serve("127.0.0.1:0").unwrap();
    let h = ServerHandle::new(n.addr().to_string());
    (n, h)
}

#[test]
fn distributed_deadlock_is_detected_and_resolved() {
    // Identity on server 0 and Identity on server 1 read from each other
    // across TCP with no initial data: a genuine distributed deadlock.
    let client = Node::serve("127.0.0.1:0").unwrap();
    let (_s0, h0) = node();
    let (_s1, h1) = node();
    let mut g = GraphBuilder::new();
    let c01 = g.channel(); // server0 -> server1
    let c10 = g.channel(); // server1 -> server0
    g.add(0, "Identity", &(), &[c10], &[c01]).unwrap();
    g.add(1, "Identity", &(), &[c01], &[c10]).unwrap();
    let dep = g.deploy(&client, &[h0.clone(), h1.clone()]).unwrap();

    // Neither local monitor may abort: each node sees one process blocked
    // on an *external* (remote) read, which is unverifiable locally.
    let probe = ClusterProbe::new(vec![h0.clone(), h1.clone()]);
    let detected = probe
        .wait_for_deadlock(Duration::from_secs(10))
        .expect("probe reachable");
    assert!(detected, "global deadlock must be detected");

    // Local monitors must NOT have aborted anything on their own.
    for h in [&h0, &h1] {
        let status = h.monitor_status().unwrap();
        assert!(status.iter().all(|n| !n.aborted), "no local aborts");
    }

    // Resolve: cluster-wide abort unwinds both partitions.
    probe.abort_all().unwrap();
    assert!(
        dep.join().is_err(),
        "aborted deployment reports the failure"
    );
}

#[test]
fn healthy_cluster_is_not_flagged() {
    // A running pipeline with data flowing must never be declared
    // deadlocked, even while its stages block briefly between items.
    let client = Node::serve("127.0.0.1:0").unwrap();
    let (_s0, h0) = node();
    let mut g = GraphBuilder::new();
    let a = g.channel();
    let b = g.channel();
    g.add(0, "Sequence", &(0i64, Some(200_000u64)), &[], &[a])
        .unwrap();
    g.add(0, "Scale", &2i64, &[a], &[b]).unwrap();
    g.claim_reader(b).unwrap();
    let mut dep = g.deploy(&client, std::slice::from_ref(&h0)).unwrap();
    let probe = ClusterProbe::new(vec![h0]);
    // Consume on a separate thread (the graph's real consumer) while this
    // thread probes: a healthy, flowing pipeline must never be flagged.
    let mut r = DataReader::new(dep.readers.remove(&b).unwrap());
    let consumer = std::thread::spawn(move || {
        for i in 0..200_000i64 {
            assert_eq!(r.read_i64().unwrap(), i * 2);
        }
    });
    while !consumer.is_finished() {
        assert!(
            !probe.detect_global_deadlock().unwrap(),
            "healthy pipeline flagged as deadlocked"
        );
    }
    consumer.join().unwrap();
    dep.join().unwrap();
}

#[test]
fn writer_endpoint_migrates_mid_stream() {
    // §6.1: "making it possible to re-distribute processes after
    // execution has already begun." The producer's write endpoint starts
    // on node A, streams ten values to the consumer on node B, migrates
    // (redirect protocol), and a successor producer on node C seamlessly
    // continues the stream — the consumer observes one uninterrupted
    // channel.
    let (node_b, _hb) = node();
    let token: u64 = rand::random();
    let reader = node_b.remote_reader(token);
    let mut consumer = DataReader::new(reader);

    // "Producer v1" on A.
    let mut sink_a = RemoteSink::connect(&node_b.addr().to_string(), token).unwrap();
    {
        use kpn::core::Sink;
        for i in 0..10i64 {
            sink_a.write_all(&i.to_be_bytes()).unwrap();
        }
    }
    // Migrate the endpoint: A tells B to expect a replacement connection.
    let (reader_addr, new_token) = sink_a.begin_redirect().unwrap();

    // "Producer v2" on C — in a deployment this would be a process spec
    // with `OutputSpec::Remote { addr: reader_addr, token: new_token }`.
    let (node_c, _hc) = node();
    let writer_c = node_c
        .remote_writer(&reader_addr.to_string(), new_token)
        .unwrap();
    let mut w = DataWriter::new(writer_c);
    for i in 10..20i64 {
        w.write_i64(i).unwrap();
    }
    drop(w);

    // The consumer sees 0..20 with no seam.
    for expect in 0..20i64 {
        assert_eq!(consumer.read_i64().unwrap(), expect);
    }
    assert!(consumer.read_i64().is_err(), "EOF after v2 closes");
}

#[test]
fn migrated_graph_output_continues_through_select_stage() {
    // End-to-end: a live KPN consumer process (not just a raw reader)
    // keeps consuming across a migration.
    use kpn::core::stdlib::Collect;
    use kpn::core::Network;
    use std::sync::{Arc, Mutex};

    let (node_b, _hb) = node();
    let token: u64 = rand::random();
    let reader = node_b.remote_reader(token);
    let net = Network::new();
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Collect::new(reader, out.clone()).with_limit(30));
    net.start();

    let mut sink_a = RemoteSink::connect(&node_b.addr().to_string(), token).unwrap();
    {
        use kpn::core::Sink;
        for i in 0..15i64 {
            sink_a.write_all(&i.to_be_bytes()).unwrap();
        }
    }
    let (addr, tok) = sink_a.begin_redirect().unwrap();
    let (node_c, _hc) = node();
    let mut w = DataWriter::new(node_c.remote_writer(&addr.to_string(), tok).unwrap());
    for i in 15..40i64 {
        if w.write_i64(i).is_err() {
            break; // consumer reached its limit and closed — expected
        }
    }
    drop(w);
    net.join().unwrap();
    assert_eq!(*out.lock().unwrap(), (0..30).collect::<Vec<i64>>());
}

#[test]
fn idle_servers_are_not_deadlocked() {
    // Servers with no networks at all: nothing is blocked, nothing is
    // live — the probe must not flag them.
    let (_s0, h0) = node();
    let (_s1, h1) = node();
    let probe = ClusterProbe::new(vec![h0.clone(), h1]);
    assert!(!probe.detect_global_deadlock().unwrap());
    // And wait_idle returns immediately.
    h0.wait_idle().unwrap();
}

#[test]
fn finished_networks_are_not_deadlocked() {
    // A server whose only network has completed: finished ≠ blocked.
    let client = Node::serve("127.0.0.1:0").unwrap();
    let (_s0, h0) = node();
    let mut g = GraphBuilder::new();
    let a = g.channel();
    let b = g.channel();
    g.add(0, "Sequence", &(0i64, Some(3u64)), &[], &[a]).unwrap();
    g.add(0, "Scale", &1i64, &[a], &[b]).unwrap();
    g.claim_reader(b).unwrap();
    let mut dep = g
        .deploy(&client, std::slice::from_ref(&h0))
        .unwrap();
    let mut r = DataReader::new(dep.readers.remove(&b).unwrap());
    for i in 0..3 {
        assert_eq!(r.read_i64().unwrap(), i);
    }
    drop(r);
    dep.join().unwrap();
    let probe = ClusterProbe::new(vec![h0]);
    assert!(!probe.detect_global_deadlock().unwrap());
}
