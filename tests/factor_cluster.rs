//! Chaos-determinacy oracle for the distributed §5.2 factor pipeline.
//!
//! The factorization network is a Kahn process network, so its output
//! history — the per-task [`SearchOutcome`] sequence, in task order — is
//! determined by the graph alone. Neither the number of Workers, nor how
//! they are spread over compute servers, nor seeded transport faults
//! (resets, stalls, refused connects) may change a single bit of it.
//!
//! A small workload keeps the battery fast: 64-bit P, 8 tasks of 8 even
//! differences, the factor planted in the last task so every task does
//! full work before the hit.

use kpn::bignum::{make_weak_key, SearchOutcome};
use kpn::net::chaos::{chaos_policy, ChaosCluster};
use kpn::net::FaultProfile;
use kpn::parallel::{factor_cluster_run, parallel_registry};
use rand::rngs::StdRng;
use rand::SeedableRng;

const TASKS: u64 = 8;
const BATCH: u64 = 8;

/// d lands in the final task: range [(TASKS-1)·2·BATCH, TASKS·2·BATCH).
const PLANTED_D: u64 = (TASKS - 1) * 2 * BATCH + 6;

fn weak_key() -> kpn::bignum::WeakKey {
    let mut rng = StdRng::seed_from_u64(0xFAC7);
    make_weak_key(64, PLANTED_D, &mut rng)
}

fn fault_profile() -> FaultProfile {
    FaultProfile {
        mean_ops_between_faults: 25,
        refuse_connects: 1, // schedule provably fires even on short runs
        max_faults: 8,
        ..FaultProfile::default()
    }
}

#[test]
fn factor_history_is_identical_across_faults_and_worker_counts() {
    let key = weak_key();

    // Baseline: fault-free cluster, single worker — the reference history.
    let baseline = {
        let cluster = ChaosCluster::plain_with(2, &parallel_registry).expect("plain cluster");
        factor_cluster_run(&cluster, &key.n, TASKS, BATCH, &[0]).expect("baseline run")
    };
    assert_eq!(baseline.outcomes.len(), TASKS as usize);
    assert_eq!(
        baseline.factor,
        Some((key.p.clone(), PLANTED_D)),
        "planted factor must be recovered"
    );
    // Every task before the planted one must report a full miss.
    for (i, o) in baseline.outcomes[..TASKS as usize - 1].iter().enumerate() {
        assert_eq!(*o, SearchOutcome::NotFound, "task {i}");
    }

    // Pooled worker sweep on fault-free clusters: same history bit for bit.
    for workers in [&[0usize, 1][..], &[0, 1, 0, 1][..]] {
        let cluster = ChaosCluster::plain_with(2, &parallel_registry).expect("plain cluster");
        let run = factor_cluster_run(&cluster, &key.n, TASKS, BATCH, workers)
            .expect("fault-free sweep run");
        assert_eq!(
            run.outcomes, baseline.outcomes,
            "{} fault-free workers broke determinacy",
            workers.len()
        );
    }

    // Faulted clusters: seeded chaos on every data link, 1/2/4 workers.
    let mut total_injected = 0;
    for (seed, workers) in [
        (0xFA_0001u64, &[0usize][..]),
        (0xFA_0002, &[0, 1][..]),
        (0xFA_0003, &[0, 1, 0, 1][..]),
    ] {
        let cluster = ChaosCluster::with_faults_with(
            2,
            seed,
            fault_profile(),
            chaos_policy(),
            &parallel_registry,
        )
        .expect("faulted cluster");
        let run = factor_cluster_run(&cluster, &key.n, TASKS, BATCH, workers)
            .unwrap_or_else(|e| panic!("faulted run (seed {seed:#x}) failed: {e}"));
        total_injected += cluster.injected();
        assert_eq!(
            run.outcomes, baseline.outcomes,
            "seed {seed:#x} with {} workers broke determinacy",
            workers.len()
        );
        assert_eq!(run.factor, baseline.factor, "recovered factor must match");
    }
    assert!(total_injected > 0, "fault schedules never fired");
}
