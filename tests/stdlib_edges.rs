//! Edge cases of the stock process library that the unit tests don't
//! reach: zero-length streams, mid-pair EOFs, and degenerate limits.

use kpn::core::stdlib::{Collect, Cons, Constant, Guard, OrderedMerge, Scale, Sequence};
use kpn::core::{DataWriter, Network};
use std::sync::{Arc, Mutex};

#[test]
fn zero_length_sequence_is_immediate_eof() {
    let net = Network::new();
    let (w, r) = net.channel();
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Sequence::new(5, 0, w));
    net.add(Collect::new(r, out.clone()));
    net.run().unwrap();
    assert!(out.lock().unwrap().is_empty());
}

#[test]
fn collect_with_zero_limit_closes_instantly() {
    let net = Network::new();
    let (w, r) = net.channel_with_capacity(64);
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Sequence::unbounded(0, w));
    net.add(Collect::new(r, out.clone()).with_limit(0));
    net.run().unwrap();
    assert!(out.lock().unwrap().is_empty());
}

#[test]
fn cons_with_empty_prefix_is_identity() {
    let net = Network::new();
    let (fw, fr) = net.channel();
    let (rw, rr) = net.channel();
    let (ow, or) = net.channel();
    let out = Arc::new(Mutex::new(Vec::new()));
    drop(fw); // empty prefix stream
    net.add(Sequence::new(1, 5, rw));
    net.add(Cons::new(fr, rr, ow));
    net.add(Collect::new(or, out.clone()));
    net.run().unwrap();
    assert_eq!(*out.lock().unwrap(), vec![1, 2, 3, 4, 5]);
}

#[test]
fn cons_removing_self_with_empty_prefix() {
    let net = Network::new();
    let (fw, fr) = net.channel();
    let (rw, rr) = net.channel();
    let (ow, or) = net.channel();
    let out = Arc::new(Mutex::new(Vec::new()));
    drop(fw);
    net.add(Sequence::new(1, 5, rw));
    net.add(Cons::new(fr, rr, ow).removing_self());
    net.add(Collect::new(or, out.clone()));
    net.run().unwrap();
    assert_eq!(*out.lock().unwrap(), vec![1, 2, 3, 4, 5]);
}

#[test]
fn guard_control_eof_mid_pair_terminates_gracefully() {
    // Data stream longer than the control stream: the Guard stops when
    // the control runs dry, cascading cleanly.
    let net = Network::new();
    let (dw, dr) = net.channel();
    let (cw, cr) = net.channel();
    let (ow, or) = net.channel();
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add_fn("data", move |_| {
        let mut w = DataWriter::new(dw);
        for v in [1.0, 2.0, 3.0, 4.0] {
            w.write_f64(v)?;
        }
        Ok(())
    });
    net.add_fn("ctrl", move |_| {
        let mut w = DataWriter::new(cw);
        w.write_bool(true)?; // only one control value
        Ok(())
    });
    net.add(Guard::new(dr, cr, ow));
    net.add(kpn::core::stdlib::CollectF64::new(or, out.clone()));
    net.run().unwrap();
    assert_eq!(*out.lock().unwrap(), vec![1.0]);
}

#[test]
fn merge_single_value_streams() {
    let net = Network::new();
    let (aw, ar) = net.channel();
    let (bw, br) = net.channel();
    let (ow, or) = net.channel();
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Constant::new(5, aw).with_limit(1));
    net.add(Constant::new(3, bw).with_limit(1));
    net.add(OrderedMerge::new(vec![ar, br], ow));
    net.add(Collect::new(or, out.clone()));
    net.run().unwrap();
    assert_eq!(*out.lock().unwrap(), vec![3, 5]);
}

#[test]
fn merge_with_one_empty_input() {
    let net = Network::new();
    let (aw, ar) = net.channel();
    let (bw, br) = net.channel();
    let (ow, or) = net.channel();
    let out = Arc::new(Mutex::new(Vec::new()));
    drop(aw); // first input empty from the start
    net.add(Sequence::new(1, 3, bw));
    net.add(OrderedMerge::new(vec![ar, br], ow));
    net.add(Collect::new(or, out.clone()));
    net.run().unwrap();
    assert_eq!(*out.lock().unwrap(), vec![1, 2, 3]);
}

#[test]
fn scale_by_negative_and_zero() {
    let net = Network::new();
    let (iw, ir) = net.channel();
    let (mw, mr) = net.channel();
    let (ow, or) = net.channel();
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Sequence::new(1, 4, iw));
    net.add(Scale::new(-2, ir, mw));
    net.add(Scale::new(0, mr, ow));
    net.add(Collect::new(or, out.clone()));
    net.run().unwrap();
    assert_eq!(*out.lock().unwrap(), vec![0, 0, 0, 0]);
}

#[test]
fn newton_sqrt_of_one_converges_immediately() {
    // r0 = 1 is already the fixpoint: the Equal fires on the first pair.
    use kpn::core::graphs::{newton_sqrt, GraphOptions};
    let net = Network::new();
    let out = newton_sqrt(&net, 1.0, &GraphOptions::default());
    net.run().unwrap();
    assert_eq!(*out.lock().unwrap(), vec![1.0]);
}

#[test]
fn newton_sqrt_of_small_fraction() {
    use kpn::core::graphs::{newton_sqrt, GraphOptions};
    let net = Network::new();
    let out = newton_sqrt(&net, 0.25, &GraphOptions::default());
    net.run().unwrap();
    let got = out.lock().unwrap()[0];
    assert!((got - 0.5).abs() < 1e-12, "{got}");
}
