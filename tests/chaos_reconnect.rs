//! Chaos suite: seeded deterministic fault schedules against the
//! sequence-numbered reconnection protocol.
//!
//! The oracle throughout is Kahn determinacy: whatever the link does —
//! resets mid-frame, connect refusals, stalls — the observable channel
//! histories must be bit-identical to a fault-free run. The suite also
//! pins the two ways a *permanently* broken or deliberately closed link
//! must terminate (§3.4 cascade), since "keeps retrying forever" is the
//! failure mode reconnection logic is most prone to.

use kpn::core::{DataReader, Error, Sink};
use kpn::net::chaos::{
    chaos_policy, check_determinacy, hamming_history, relay_history, sieve_history, ChaosGuard,
};
use kpn::net::{
    install_profile, remove_profile, FaultProfile, NetProfile, Node, ReconnectPolicy, RemoteSink,
    TcpFactory,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The pinned seeds of the suite (also exercised by CI's chaos job).
const SEEDS: [u64; 3] = [0x5EED_0001, 0x5EED_0002, 0x5EED_0003];

fn aggressive(profile_ops: u64, max_faults: u64) -> FaultProfile {
    FaultProfile {
        mean_ops_between_faults: profile_ops,
        refuse_connects: 1, // guarantees the schedule fires at least once
        max_faults,
        ..FaultProfile::default()
    }
}

#[test]
#[ignore = "chaos: run with --ignored"]
fn relay_history_is_deterministic_under_all_seeds() {
    let faults = check_determinacy(2, &SEEDS, aggressive(10, 12), chaos_policy(), |c| {
        relay_history(c, 64)
    })
    .expect("relay determinacy");
    assert!(faults > 0, "no faults were injected");
}

#[test]
#[ignore = "chaos: run with --ignored"]
fn sieve_history_is_deterministic_under_all_seeds() {
    let faults = check_determinacy(2, &SEEDS, aggressive(25, 12), chaos_policy(), |c| {
        sieve_history(c, 200)
    })
    .expect("sieve determinacy");
    assert!(faults > 0, "no faults were injected");
}

#[test]
#[ignore = "chaos: run with --ignored"]
fn hamming_history_is_deterministic_under_all_seeds() {
    let faults = check_determinacy(2, &SEEDS, aggressive(25, 12), chaos_policy(), |c| {
        hamming_history(c, 60)
    })
    .expect("hamming determinacy");
    assert!(faults > 0, "no faults were injected");
}

#[test]
#[ignore = "chaos: run with --ignored"]
fn reset_mid_frame_is_replayed_exactly_once() {
    // Frames are up to 64 KiB and faults fire every ~6 transport ops, so
    // resets land inside frame payloads; the replay buffer plus the
    // reader's duplicate-prefix discard must reassemble the exact stream.
    let profile = FaultProfile {
        stall_ratio: 0, // resets only
        ..aggressive(6, 40)
    };
    let mut guard = ChaosGuard::new(0xDEAD_BEEF, profile, chaos_policy());
    let node = Node::serve_with_profile("127.0.0.1:0", guard.net_profile()).unwrap();
    guard.cover(node.addr().to_string());
    let token: u64 = rand::random();
    let mut reader = node.remote_reader(token);

    let addr = node.addr().to_string();
    let payload: Vec<u8> = (0..300 * 1024u32).map(|i| (i.wrapping_mul(31) % 251) as u8).collect();
    let expect = payload.clone();
    let writer = std::thread::spawn(move || {
        let mut w = kpn::net::remote_writer(&addr, token).unwrap();
        w.write_all(&payload).unwrap();
    });

    let mut got = vec![0u8; expect.len()];
    reader.read_exact(&mut got).unwrap();
    assert!(got == expect, "stream corrupted by replay");
    writer.join().unwrap();
    assert!(guard.injected() > 0, "no faults were injected");
}

#[test]
#[ignore = "chaos: run with --ignored"]
fn redirect_splice_survives_resets() {
    // §4.3 migration under fire: the Redirect marker's delivery-ack
    // handshake runs on a link that keeps resetting, and the successor
    // writer connects through the same faulty profile. The consumer must
    // observe one seamless stream.
    let profile = FaultProfile {
        stall_ratio: 0,
        ..aggressive(5, 30)
    };
    let mut guard = ChaosGuard::new(SEEDS[0], profile, chaos_policy());
    let node_b = Node::serve_with_profile("127.0.0.1:0", guard.net_profile()).unwrap();
    guard.cover(node_b.addr().to_string());
    let token: u64 = rand::random();
    let reader = node_b.remote_reader(token);
    let consumer = std::thread::spawn(move || {
        let mut r = DataReader::new(reader);
        let mut got = Vec::new();
        while let Ok(v) = r.read_i64() {
            got.push(v);
        }
        got
    });

    let mut sink = RemoteSink::connect(&node_b.addr().to_string(), token).unwrap();
    for i in 0..20i64 {
        sink.write_all(&i.to_be_bytes()).unwrap();
    }
    let (reader_addr, new_token) = sink.begin_redirect().unwrap();

    // Successor producer on a fresh (fault-free) node: its outbound link
    // still goes through the faulty profile installed for node B's address.
    let node_c = Node::serve("127.0.0.1:0").unwrap();
    let w = node_c
        .remote_writer(&reader_addr.to_string(), new_token)
        .unwrap();
    let mut w = kpn::core::DataWriter::new(w);
    for i in 20..40i64 {
        w.write_i64(i).unwrap();
    }
    drop(w);

    let got = consumer.join().unwrap();
    assert_eq!(got, (0..40).collect::<Vec<i64>>());
    assert!(guard.injected() > 0, "no faults were injected");
}

#[test]
#[ignore = "chaos: run with --ignored"]
fn dead_link_exhausts_budget_and_cascades() {
    // A link that dies and never comes back: the writer must burn its
    // reconnect budget and surface a terminal error (§3.4 cascade), not
    // hang. The fake peer accepts one connection, swallows the hello,
    // then disappears for good — every reconnect gets ECONNREFUSED.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let policy = ReconnectPolicy {
        initial_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(20),
        budget: Duration::from_millis(400),
        op_timeout: Some(Duration::from_millis(50)),
        ..ReconnectPolicy::resilient()
    };
    install_profile(
        addr.clone(),
        NetProfile {
            factory: Arc::new(TcpFactory),
            policy,
        },
    );
    let accept = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        use std::io::Read;
        let mut hello = [0u8; 9];
        let _ = s.read_exact(&mut hello);
        // Socket and listener drop here: the address goes permanently dark.
    });

    let mut w = kpn::net::remote_writer(&addr, 7).unwrap();
    accept.join().unwrap();
    let start = Instant::now();
    let mut outcome = Ok(());
    for i in 0..200_000u64 {
        if let Err(e) = w.write_all(&i.to_be_bytes()) {
            outcome = Err(e);
            break;
        }
    }
    let err = outcome.expect_err("a permanently dead link must fail, not hang");
    assert!(
        start.elapsed() < Duration::from_secs(15),
        "budget exhaustion took {:?}",
        start.elapsed()
    );
    assert!(
        err.to_string().contains("budget"),
        "expected a budget-exhaustion error, got: {err}"
    );
    remove_profile(&addr);
}

#[test]
#[ignore = "chaos: run with --ignored"]
fn deliberate_close_wins_over_reconnection() {
    // The race the Stop notice exists for: the reader closes on purpose
    // while the writer's link is being reset under it. The writer's next
    // recovery attempt must be answered with Stop and terminate via
    // WriteClosed well inside its (deliberately huge) budget — a
    // recovering channel must not mistake "reader gone forever" for
    // "link still flaky".
    let profile = FaultProfile {
        stall_ratio: 0,
        ..aggressive(5, 500)
    };
    let policy = ReconnectPolicy {
        budget: Duration::from_secs(120),
        ..chaos_policy()
    };
    let mut guard = ChaosGuard::new(SEEDS[1], profile, policy);
    let node = Node::serve_with_profile("127.0.0.1:0", guard.net_profile()).unwrap();
    guard.cover(node.addr().to_string());
    let token: u64 = rand::random();
    let reader = node.remote_reader(token);
    let consumer = std::thread::spawn(move || {
        let mut r = DataReader::new(reader);
        for _ in 0..32 {
            r.read_i64().unwrap();
        }
        // Dropping the reader is a *deliberate* close: token goes dead.
    });

    let mut w = kpn::net::remote_writer(&node.addr().to_string(), token).unwrap();
    let start = Instant::now();
    let mut outcome = Ok(());
    for i in 0..2_000_000u64 {
        if let Err(e) = w.write_all(&i.to_be_bytes()) {
            outcome = Err(e);
            break;
        }
    }
    consumer.join().unwrap();
    let err = outcome.expect_err("writer must terminate after the deliberate close");
    assert!(
        matches!(err, Error::WriteClosed),
        "expected WriteClosed from the Stop notice, got: {err}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "Stop notice took {:?} — writer was retrying instead of cascading",
        start.elapsed()
    );
}
