//! Integration tests for §3.4's graceful-termination machinery across the
//! whole stack: iteration limits, data-dependent stops, cascades through
//! reconfigured graphs, and failure injection.

use kpn::core::graphs::{newton_sqrt, GraphOptions};
use kpn::core::stdlib::{Collect, Discard, Duplicate, Scale, Sequence};
use kpn::core::{DeadlockPolicy, Error, Network, NetworkConfig};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[test]
fn sink_limit_terminates_unbounded_graph_quickly() {
    // "All of the processes do terminate almost immediately after the
    // Print process stops."
    let start = Instant::now();
    let net = Network::new();
    let (aw, ar) = net.channel();
    let (bw, br) = net.channel();
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Sequence::unbounded(0, aw));
    net.add(Scale::new(2, ar, bw));
    net.add(Collect::new(br, out.clone()).with_limit(100));
    net.run().unwrap();
    assert_eq!(out.lock().unwrap().len(), 100);
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "termination should be prompt"
    );
}

#[test]
fn source_limit_drains_everything() {
    // "In this case no unnecessary computation occurs and all data
    // produced is eventually consumed."
    let net = Network::new();
    let (aw, ar) = net.channel();
    let (bw, br) = net.channel();
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Sequence::new(0, 5000, aw));
    net.add(Scale::new(1, ar, bw));
    net.add(Collect::new(br, out.clone()));
    net.run().unwrap();
    assert_eq!(out.lock().unwrap().len(), 5000, "every datum consumed");
}

#[test]
fn data_dependent_termination_newton() {
    // Figure 11: the graph stops itself when the estimate converges.
    let net = Network::new();
    let out = newton_sqrt(&net, 1234.5678, &GraphOptions::default());
    net.run().unwrap();
    let got = out.lock().unwrap();
    assert_eq!(got.len(), 1);
    assert!((got[0] - 1234.5678f64.sqrt()).abs() < 1e-9);
}

#[test]
fn fanout_cascade_stops_all_branches() {
    // One branch stops early; the cascade through Duplicate must
    // eventually stop the other branch and the source.
    let net = Network::new();
    let (aw, ar) = net.channel();
    let (b1w, b1r) = net.channel();
    let (b2w, b2r) = net.channel();
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Sequence::unbounded(0, aw));
    net.add(Duplicate::two(ar, b1w, b2w));
    net.add(Collect::new(b1r, out.clone()).with_limit(50));
    net.add(Discard::new(b2r));
    net.run().unwrap();
    assert_eq!(out.lock().unwrap().len(), 50);
}

#[test]
fn abort_interrupts_long_running_network() {
    let net = Network::with_config(NetworkConfig {
        deadlock_policy: DeadlockPolicy::Ignore,
        ..Default::default()
    });
    let (aw, ar) = net.channel();
    net.add(Sequence::unbounded(0, aw));
    net.add(Discard::new(ar));
    net.start();
    std::thread::sleep(Duration::from_millis(50));
    net.abort();
    assert!(matches!(net.join(), Err(Error::Deadlocked)));
}

#[test]
fn true_deadlock_is_detected_and_reported() {
    // Two processes each waiting for the other's output: a genuine Kahn
    // deadlock. Under the simulation scheduler detection is driven by
    // scheduler quiescence rather than wall-clock monitor ticks, so the
    // abort is immediate and the schedule is pinned by the seed.
    use kpn::core::{run_sim, DataReader, DataWriter, SchedulePolicy};
    let start = Instant::now();
    let outcome = run_sim(SchedulePolicy::RandomWalk { seed: 7 }, |net| {
        let (aw, ar) = net.channel();
        let (bw, br) = net.channel();
        net.add_fn("p1", move |_| {
            let mut r = DataReader::new(br);
            let mut w = DataWriter::new(aw);
            loop {
                let v = r.read_i64()?; // waits for p2, which waits for us
                w.write_i64(v)?;
            }
        });
        net.add_fn("p2", move |_| {
            let mut r = DataReader::new(ar);
            let mut w = DataWriter::new(bw);
            loop {
                let v = r.read_i64()?;
                w.write_i64(v)?;
            }
        });
    });
    assert!(matches!(outcome, Err(Error::Deadlocked)));
    assert!(
        start.elapsed() < Duration::from_secs(1),
        "sim-mode detection must not wait on wall-clock ticks"
    );
}

#[test]
fn true_deadlock_is_detected_under_pooled_executor() {
    // The same two-process cycle under the work-stealing pool: both
    // fibers park, the workers' pre-sleep rescan finds no runnable work
    // (hot slots included), and the quiescence tick must hand the
    // monitor an accurate all-blocked picture — a deferred-but-runnable
    // fiber faking quiescence here would make this abort spurious, a
    // lost wakeup would make it hang.
    use kpn::core::{DataReader, DataWriter, ExecMode, MonitorTiming};
    let start = Instant::now();
    let net = Network::with_config(NetworkConfig {
        mode: ExecMode::Pooled { workers: 2 },
        monitor_timing: MonitorTiming::fast(),
        ..Default::default()
    });
    let (aw, ar) = net.channel();
    let (bw, br) = net.channel();
    net.add_fn("p1", move |_| {
        let mut r = DataReader::new(br);
        let mut w = DataWriter::new(aw);
        loop {
            let v = r.read_i64()?;
            w.write_i64(v)?;
        }
    });
    net.add_fn("p2", move |_| {
        let mut r = DataReader::new(ar);
        let mut w = DataWriter::new(bw);
        loop {
            let v = r.read_i64()?;
            w.write_i64(v)?;
        }
    });
    assert!(matches!(net.run(), Err(Error::Deadlocked)));
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "pooled-mode detection must ride the idle-hook tick, not hang"
    );
}

#[test]
fn deadlock_policy_max_capacity_bounds_memory() {
    // A graph needing unbounded buffers, capped: the monitor grows until
    // the cap, then declares a true deadlock instead of eating all memory.
    use kpn::core::graphs::mod_merge_dag;
    let net = Network::with_config(NetworkConfig {
        deadlock_policy: DeadlockPolicy::Grow {
            max_capacity: Some(32),
        },
        ..Default::default()
    });
    // Needs 9 queued i64s (72 bytes) on the small branch; cap is 32 bytes.
    let _out = mod_merge_dag(&net, 10, 100, 8);
    assert!(matches!(net.run(), Err(Error::Deadlocked)));
}

#[test]
fn poisoned_network_fails_fast_afterwards() {
    let net = Network::new();
    let (_w, r) = net.channel();
    net.add_fn("stuck", move |_| {
        let mut r = r;
        let mut b = [0u8; 1];
        let _ = r.read(&mut b);
        Ok(())
    });
    net.start();
    net.abort();
    let _ = net.join();
    // New operations on the same (aborted) network's channels fail fast.
    let (mut w2, _r2) = net.channel();
    // Channel was created after the abort: writes must fail immediately
    // rather than block forever.
    let result = w2.write_all(&[0u8; 1]);
    // Either outcome is acceptable as long as it does not hang: a fresh
    // channel may still accept its first buffered byte.
    let _ = result;
}
