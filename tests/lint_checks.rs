//! Positive and negative cases for every diagnostic code of the static
//! network verifier, exercised through the public API on the paper's own
//! graphs: each code must fire on a seeded defect and stay silent on the
//! corresponding clean graph. Also the zero-capacity construction
//! regressions (a zero-capacity channel can never transfer data and is
//! rejected up front rather than deadlocking at run time).

use kpn::core::graphs::{self, GraphOptions};
use kpn::core::stdlib::{Collect, CollectF64, Constant, ConstantF64, Scale, Sequence};
use kpn::core::{
    DataWriter, DiagCode, Error, ExecMode, Fix, LintLevel, Network, NetworkConfig, Process,
    ProcessCtx, ProcessTag, SchedulePolicy, SimScheduler,
};
use kpn::net::{ChannelSpec, GraphBuilder, GraphSpec, InputSpec, OutputSpec, ProcessSpec};
use std::sync::{Arc, Mutex};

fn deny() -> Network {
    Network::with_config(NetworkConfig {
        lint: LintLevel::Deny,
        ..NetworkConfig::default()
    })
}

fn lint_error(net: &Network) -> Vec<kpn::core::Diagnostic> {
    match net.run() {
        Err(Error::Lint(diags)) => diags,
        other => panic!("expected lint rejection, got {other:?}"),
    }
}

// --- L001: dangling endpoint ----------------------------------------------

#[test]
fn l001_fires_on_writer_never_given_to_a_process() {
    let net = deny();
    let (w, r) = net.channel();
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Collect::new(r, out));
    // `w` stays here, undeclared: Collect would block forever.
    let diags = lint_error(&net);
    assert!(
        diags.iter().any(|d| d.code == DiagCode::L001),
        "expected L001 in {diags:?}"
    );
    drop(w);
}

#[test]
fn l001_silent_when_endpoint_declared_external() {
    let net = deny();
    let (w, r) = net.channel();
    w.declare_external();
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Collect::new(r, out.clone()));
    net.start();
    // Feed the graph from the test thread — the declared-external pattern.
    let mut dw = DataWriter::new(w);
    for v in 0..5 {
        dw.write_i64(v).unwrap();
    }
    drop(dw);
    net.join().unwrap();
    assert_eq!(*out.lock().unwrap(), vec![0, 1, 2, 3, 4]);
}

// --- L002: typed-stream contract mismatch ---------------------------------

#[test]
fn l002_fires_on_element_type_mismatch() {
    let net = deny();
    let (w, r) = net.channel();
    // Writer produces f64, reader consumes i64: eight bytes either way, so
    // only the static contract can catch the misinterpretation.
    net.add(ConstantF64::new(1.5, w).with_limit(3));
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Collect::new(r, out));
    let diags = lint_error(&net);
    assert!(
        diags.iter().any(|d| d.code == DiagCode::L002),
        "expected L002 in {diags:?}"
    );
}

#[test]
fn l002_silent_on_matching_contract() {
    let net = deny();
    let (w, r) = net.channel();
    net.add(ConstantF64::new(1.5, w).with_limit(3));
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(CollectF64::new(r, out.clone()));
    net.run().unwrap();
    assert_eq!(*out.lock().unwrap(), vec![1.5, 1.5, 1.5]);
}

#[test]
fn l002_fires_on_framing_mismatch() {
    // A DataWriter on one side and an ObjectReader on the other: the wire
    // formats are incompatible even before element types enter into it.
    let net = Network::new();
    let (w, r) = net.channel();
    let dw = DataWriter::new(w);
    let or = kpn::codec::ObjectReader::new(r);
    let diags = net.lint_diagnostics();
    assert!(
        diags
            .iter()
            .any(|d| d.code == DiagCode::L002 && d.message.contains("framing")),
        "expected framing L002 in {diags:?}"
    );
    drop((dw, or));
}

// --- L003: undercapacitated cycle -----------------------------------------

#[test]
fn l003_fires_on_undersized_hamming_cycle() {
    // Figure 12's graph with 4-byte channels: every cycle channel that
    // carries declared 8-byte tokens is too small to circulate even one.
    let net = Network::new();
    let opts = GraphOptions {
        channel_capacity: 4,
        ..GraphOptions::default()
    };
    let _out = graphs::hamming(&net, 20, &opts);
    let diags = net.lint_diagnostics();
    let l003: Vec<_> = diags.iter().filter(|d| d.code == DiagCode::L003).collect();
    assert!(!l003.is_empty(), "expected L003 in {diags:?}");
    // The graph must not start at Deny — drain it via abort to avoid
    // actually running the doomed cycle.
    net.abort();
}

#[test]
fn l003_silent_on_adequate_hamming_cycle() {
    let net = deny();
    let opts = GraphOptions {
        channel_capacity: 16,
        ..GraphOptions::default()
    };
    let out = graphs::hamming(&net, 20, &opts);
    net.run().unwrap();
    assert_eq!(*out.lock().unwrap(), graphs::hamming_reference(20));
}

// --- L004: orphan process --------------------------------------------------

struct Idle {
    tag: ProcessTag,
}

impl Idle {
    fn new() -> Self {
        Idle {
            tag: ProcessTag::new("Idle"),
        }
    }
}

impl Process for Idle {
    fn name(&self) -> String {
        "Idle".into()
    }
    fn lint_tag(&self) -> Option<&ProcessTag> {
        Some(&self.tag)
    }
    fn run(self: Box<Self>, _ctx: &ProcessCtx) -> kpn::core::Result<()> {
        Ok(())
    }
}

#[test]
fn l004_fires_on_process_without_endpoints() {
    let net = deny();
    net.add_process(Box::new(Idle::new()));
    let diags = lint_error(&net);
    assert!(
        diags.iter().any(|d| d.code == DiagCode::L004),
        "expected L004 in {diags:?}"
    );
}

#[test]
fn l004_silent_on_connected_processes() {
    let net = deny();
    let (w, r) = net.channel();
    net.add(Constant::new(7, w).with_limit(2));
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Collect::new(r, out.clone()));
    net.run().unwrap();
    assert_eq!(*out.lock().unwrap(), vec![7, 7]);
}

// --- L005: SDF-checkable subgraph ------------------------------------------

/// A declared process that attaches its endpoints with explicit SDF rates
/// and terminates immediately — the graph exists only to be analysed.
struct RateActor {
    tag: ProcessTag,
    inputs: Vec<kpn::core::ChannelReader>,
    outputs: Vec<kpn::core::ChannelWriter>,
}

impl RateActor {
    fn new(
        name: &str,
        inputs: Vec<(kpn::core::ChannelReader, u64)>,
        outputs: Vec<(kpn::core::ChannelWriter, u64)>,
    ) -> Self {
        let tag = ProcessTag::new(name);
        let inputs = inputs
            .into_iter()
            .map(|(r, rate)| {
                r.attach(&tag);
                r.declare_item::<i64>(8);
                r.declare_rate(rate);
                r
            })
            .collect();
        let outputs = outputs
            .into_iter()
            .map(|(w, rate)| {
                w.attach(&tag);
                w.declare_item::<i64>(8);
                w.declare_rate(rate);
                w
            })
            .collect();
        RateActor { tag, inputs, outputs }
    }
}

impl Process for RateActor {
    fn name(&self) -> String {
        self.tag.name().to_string()
    }
    fn lint_tag(&self) -> Option<&ProcessTag> {
        Some(&self.tag)
    }
    fn run(self: Box<Self>, _ctx: &ProcessCtx) -> kpn::core::Result<()> {
        drop(self.inputs);
        drop(self.outputs);
        Ok(())
    }
}

#[test]
fn l005_fires_on_inconsistent_rates() {
    kpn::lint::install();
    let net = deny();
    // a -2/1-> b -2/1-> a: each firing doubles the tokens in flight — the
    // balance equations have no solution.
    let (ab_w, ab_r) = net.channel();
    let (ba_w, ba_r) = net.channel();
    net.add_process(Box::new(RateActor::new(
        "a",
        vec![(ba_r, 1)],
        vec![(ab_w, 2)],
    )));
    net.add_process(Box::new(RateActor::new(
        "b",
        vec![(ab_r, 1)],
        vec![(ba_w, 2)],
    )));
    let diags = lint_error(&net);
    assert!(
        diags.iter().any(|d| d.code == DiagCode::L005),
        "expected L005 in {diags:?}"
    );
}

#[test]
fn l005_silent_on_consistent_rates() {
    kpn::lint::install();
    let net = deny();
    let (w, r) = net.channel();
    net.add_process(Box::new(RateActor::new("src", vec![], vec![(w, 1)])));
    net.add_process(Box::new(RateActor::new("sink", vec![(r, 1)], vec![])));
    net.run().unwrap();
}

// --- Paper graphs stay clean at Deny, through reconfiguration --------------

#[test]
fn sieve_is_lint_clean_across_reconfigurations() {
    // The Sift process dynamically inserts a Modulo stage per prime
    // (Figures 7/8); lint re-checks after every insertion, so a full run
    // at Deny proves each intermediate topology is clean too.
    kpn::lint::install();
    let net = deny();
    let out = graphs::primes_below(&net, 50, &GraphOptions::default());
    net.run().unwrap();
    assert_eq!(
        *out.lock().unwrap(),
        vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]
    );
}

#[test]
fn fibonacci_and_newton_are_lint_clean_at_deny() {
    kpn::lint::install();
    let net = deny();
    let out = graphs::fibonacci(&net, 10, &GraphOptions::default());
    net.run().unwrap();
    assert_eq!(*out.lock().unwrap(), vec![1, 1, 2, 3, 5, 8, 13, 21, 34, 55]);

    let net = deny();
    let out = graphs::newton_sqrt(&net, 2.0, &GraphOptions::default());
    net.run().unwrap();
    let got = out.lock().unwrap()[0];
    assert!((got - 2f64.sqrt()).abs() < 1e-9);
}

// --- Zero-capacity regressions ---------------------------------------------

#[test]
fn zero_capacity_channel_rejected() {
    let net = Network::new();
    match net.try_channel_with_capacity(0) {
        Err(Error::Graph(msg)) => assert!(msg.contains("capacity"), "{msg}"),
        other => panic!("expected graph error, got {other:?}"),
    }
}

#[test]
#[should_panic(expected = "capacity")]
fn zero_capacity_channel_panics_on_infallible_path() {
    let net = Network::new();
    let _ = net.channel_with_capacity(0);
}

#[test]
fn zero_capacity_rejected_inside_processes() {
    let net = Network::new();
    let failed = Arc::new(Mutex::new(None));
    let failed2 = failed.clone();
    net.add_fn("probe", move |ctx| {
        *failed2.lock().unwrap() = Some(ctx.try_channel_with_capacity(0).is_err());
        Ok(())
    });
    net.run().unwrap();
    assert_eq!(*failed.lock().unwrap(), Some(true));
}

#[test]
fn zero_capacity_spec_edge_rejected_by_builder() {
    let mut b = GraphBuilder::new();
    let c = b.channel_with_capacity(0);
    b.add(kpn::net::CLIENT, "Sequence", &(1i64, Some(3u64)), &[], &[c])
        .unwrap();
    b.claim_reader(c).unwrap();
    let cluster = kpn::net::chaos::ChaosCluster::plain(0).unwrap();
    match b.deploy(cluster.client(), cluster.handles()) {
        Err(Error::Graph(msg)) => assert!(msg.contains("zero capacity"), "{msg}"),
        other => panic!("expected graph error, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn zero_capacity_spec_edge_flagged_by_spec_checker() {
    let spec = GraphSpec {
        channels: vec![ChannelSpec { capacity: 0 }],
        processes: vec![
            ProcessSpec {
                type_name: "Sequence".into(),
                params: Vec::new(),
                inputs: vec![],
                outputs: vec![OutputSpec::Local(0)],
            },
            ProcessSpec {
                type_name: "Print".into(),
                params: Vec::new(),
                inputs: vec![InputSpec::Local(0)],
                outputs: vec![],
            },
        ],
    };
    let diags = kpn::lint::check_specs(&[("part".into(), spec)]);
    assert!(
        diags.iter().any(|d| d.code == DiagCode::L003),
        "expected zero-capacity finding in {diags:?}"
    );
}

// --- Warn level reports without blocking -----------------------------------

#[test]
fn warn_level_does_not_block_start() {
    let net = Network::with_config(NetworkConfig {
        lint: LintLevel::Warn,
        ..NetworkConfig::default()
    });
    let (w, r) = net.channel();
    // Type mismatch (L002) is advisory here: the run proceeds — eight
    // bytes are eight bytes — but the warning lands on stderr.
    net.add(ConstantF64::new(2.0, w).with_limit(1));
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Collect::new(r, out.clone()));
    net.run().unwrap();
    assert_eq!(out.lock().unwrap().len(), 1);
}

// --- Structured diagnostics -------------------------------------------------

#[test]
fn diagnostics_name_the_offending_process_and_channel() {
    let net = Network::new();
    let (w, r) = net.channel();
    net.add(ConstantF64::new(1.0, w).with_limit(1));
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Collect::new(r, out));
    let diags = net.lint_diagnostics();
    let l002 = diags
        .iter()
        .find(|d| d.code == DiagCode::L002)
        .expect("type mismatch present");
    assert!(l002.channel.is_some(), "channel attribution missing");
    assert_eq!(l002.process.as_deref(), Some("Collect"));
    net.abort();
}

#[test]
fn sequence_scale_graph_snapshot_is_fully_declared() {
    let net = Network::new();
    let (aw, ar) = net.channel();
    let (bw, br) = net.channel();
    net.add(Sequence::new(0, 5, aw));
    net.add(Scale::new(2, ar, bw));
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Collect::new(br, out));
    let snap = net.topology_snapshot();
    assert!(snap.fully_declared);
    assert_eq!(snap.processes.len(), 3);
    assert_eq!(snap.channels.len(), 2);
    net.abort();
}

// --- Capacity synthesis on the paper graphs --------------------------------

#[test]
fn hamming_cap4_emits_setcapacity_fixes() {
    // The acceptance case from the synthesis work: Figure 12's graph at
    // capacity 4 must come with machine-applicable repairs, not just a
    // verdict.
    kpn::lint::install();
    let net = Network::new();
    let opts = GraphOptions {
        channel_capacity: 4,
        ..GraphOptions::default()
    };
    let _out = graphs::hamming(&net, 20, &opts);
    let diags = net.lint_diagnostics();
    let fixes: Vec<&Fix> = diags.iter().flat_map(|d| d.fixes.iter()).collect();
    assert!(!fixes.is_empty(), "expected SetCapacity fixes in {diags:?}");
    for Fix::SetCapacity { current, suggested, .. } in fixes {
        assert!(suggested > current, "fix must grow the channel");
    }
    net.abort();
}

/// With `synthesize_capacities`, the capacity-4 Hamming graph passes the
/// `Deny` gate (the fixes resolve every L003 before enforcement), runs to
/// completion, and — the observable claim behind synthesis — never needs
/// the monitor's runtime grow loop.
fn hamming_cap4_synthesized_runs_without_growth(mode: ExecMode) {
    kpn::lint::install();
    let net = Network::with_config(NetworkConfig {
        lint: LintLevel::Deny,
        synthesize_capacities: true,
        mode,
        ..NetworkConfig::default()
    });
    let opts = GraphOptions {
        channel_capacity: 4,
        ..GraphOptions::default()
    };
    let out = graphs::hamming(&net, 20, &opts);
    net.run().unwrap();
    assert_eq!(*out.lock().unwrap(), graphs::hamming_reference(20));
    let stats = net.monitor().stats();
    assert_eq!(
        stats.capacity_grows, 0,
        "synthesized region fell back to runtime growth: {:?}",
        stats.growth_log
    );
}

#[test]
fn hamming_cap4_synthesized_thread() {
    hamming_cap4_synthesized_runs_without_growth(ExecMode::Thread);
}

#[test]
fn hamming_cap4_synthesized_pooled() {
    hamming_cap4_synthesized_runs_without_growth(ExecMode::Pooled { workers: 2 });
}

#[test]
fn hamming_cap4_synthesized_sim() {
    hamming_cap4_synthesized_runs_without_growth(ExecMode::Sim(SimScheduler::new(
        SchedulePolicy::RandomWalk { seed: 7 },
    )));
}

#[test]
fn sieve_synthesis_is_a_noop_and_never_grows() {
    // The sieve's Sift stage is data-dependent (no declared rates), so no
    // SDF region forms and synthesis has nothing to suggest: enabling it
    // must change nothing, and the default capacities already run the
    // graph without monitor growth.
    kpn::lint::install();
    let net = Network::with_config(NetworkConfig {
        lint: LintLevel::Deny,
        synthesize_capacities: true,
        ..NetworkConfig::default()
    });
    let out = graphs::primes_below(&net, 50, &GraphOptions::default());
    let diags = net.lint_diagnostics();
    assert!(
        diags.iter().all(|d| d.fixes.is_empty()),
        "sieve should synthesize no fixes: {diags:?}"
    );
    net.run().unwrap();
    assert_eq!(
        *out.lock().unwrap(),
        vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]
    );
    assert_eq!(net.monitor().stats().capacity_grows, 0);
}
