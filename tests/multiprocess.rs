//! True multi-process distribution: spawns real `kpn-server` OS processes
//! (the §4.1 compute-server binary) and deploys graphs to them over TCP —
//! the closest a single machine comes to the paper's cluster deployment.

use kpn::core::DataReader;
use kpn::net::{GraphBuilder, Node, ServerHandle};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

struct ServerProcess {
    child: Child,
    addr: String,
}

impl ServerProcess {
    fn spawn() -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_kpn-server"))
            .arg("127.0.0.1:0")
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn kpn-server");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let first = lines
            .next()
            .expect("server prints its address")
            .expect("readable stdout");
        let addr = first
            .rsplit(' ')
            .next()
            .expect("address at end of line")
            .to_string();
        ServerProcess { child, addr }
    }

    fn handle(&self) -> ServerHandle {
        ServerHandle::new(self.addr.clone())
    }
}

impl Drop for ServerProcess {
    fn drop(&mut self) {
        // Belt and braces: ask nicely first, then reap.
        let _ = self.handle().shutdown();
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn graph_runs_across_real_server_processes() {
    let s0 = ServerProcess::spawn();
    let s1 = ServerProcess::spawn();
    let client = Node::serve("127.0.0.1:0").unwrap();

    s0.handle().ping().expect("server 0 alive");
    s1.handle().ping().expect("server 1 alive");

    // Sequence on server 0 → Scale on server 1 → client.
    let mut g = GraphBuilder::new();
    let a = g.channel();
    let b = g.channel();
    g.add(0, "Sequence", &(1i64, Some(50u64)), &[], &[a])
        .unwrap();
    g.add(1, "Scale", &11i64, &[a], &[b]).unwrap();
    g.claim_reader(b).unwrap();
    let mut dep = g.deploy(&client, &[s0.handle(), s1.handle()]).unwrap();

    let mut r = DataReader::new(dep.readers.remove(&b).unwrap());
    for i in 1..=50 {
        assert_eq!(r.read_i64().unwrap(), i * 11);
    }
    assert!(r.read_i64().is_err());
    drop(r);
    dep.join().unwrap();
}

#[test]
fn self_reconfiguring_sieve_on_real_server_process() {
    // The Sift process dynamically grows the graph inside the *server
    // process* — dynamic reconfiguration entirely on the remote side.
    let s0 = ServerProcess::spawn();
    let client = Node::serve("127.0.0.1:0").unwrap();
    let mut g = GraphBuilder::new();
    let seq = g.channel();
    let primes = g.channel();
    g.add(0, "Sequence", &(2i64, Some(48u64)), &[], &[seq])
        .unwrap();
    g.add(0, "Sift", &(), &[seq], &[primes]).unwrap();
    g.claim_reader(primes).unwrap();
    let mut dep = g.deploy(&client, &[s0.handle()]).unwrap();
    let mut r = DataReader::new(dep.readers.remove(&primes).unwrap());
    let expect = kpn::core::graphs::primes_reference(50);
    for e in &expect {
        assert_eq!(r.read_i64().unwrap(), *e);
    }
    assert!(r.read_i64().is_err());
    drop(r);
    dep.join().unwrap();
}

#[test]
fn shutdown_request_stops_server_process() {
    let mut s = ServerProcess::spawn();
    s.handle().ping().unwrap();
    s.handle().shutdown().unwrap();
    // The server's main loop polls every 100 ms; it must exit on its own.
    let status = s.child.wait().expect("server exits after shutdown");
    assert!(status.success());
}

#[test]
fn killed_server_surfaces_as_disconnect() {
    // Failure injection: the server process dies (kill -9 semantics) while
    // streaming; the client's read must fail with a transport error — the
    // paper's exception model ("these exceptions even propagate across
    // network connections") applied to a crash instead of a graceful close.
    use kpn::core::DataReader;

    let mut s = ServerProcess::spawn();
    let client = Node::serve("127.0.0.1:0").unwrap();
    let mut g = GraphBuilder::new();
    let a = g.channel();
    let b = g.channel();
    // Unbounded stream so the channel is alive when we kill the server.
    g.add(0, "Sequence", &(0i64, Option::<u64>::None), &[], &[a])
        .unwrap();
    g.add(0, "Scale", &1i64, &[a], &[b]).unwrap();
    g.claim_reader(b).unwrap();
    let mut dep = g.deploy(&client, &[s.handle()]).unwrap();
    let mut r = DataReader::new(dep.readers.remove(&b).unwrap());
    // Confirm data is flowing...
    for i in 0..100 {
        assert_eq!(r.read_i64().unwrap(), i);
    }
    // ...then murder the server.
    s.child.kill().unwrap();
    s.child.wait().unwrap();
    // The client may consume bytes already buffered in the socket, but
    // must hit an error (not hang, not silently EOF-loop) soon after.
    let mut failed = false;
    for _ in 0..1_000_000 {
        if r.read_i64().is_err() {
            failed = true;
            break;
        }
    }
    assert!(failed, "client never observed the server crash");
}
