//! Long-running soak tests, `#[ignore]`d by default:
//! `cargo test --release -- --ignored` runs them.

use kpn::core::graphs::{first_primes, hamming, hamming_reference, primes_reference, GraphOptions};
use kpn::core::{MonitorTiming, Network, NetworkConfig};
use kpn::net::chaos::{chaos_policy, relay_history, sieve_history, ChaosCluster};
use kpn::net::FaultProfile;

/// Fast monitor cadence: soak graphs starve channels on purpose, so the
/// default 20ms deadlock tick dominates runtime.
fn fast_net() -> Network {
    Network::with_config(NetworkConfig {
        monitor_timing: MonitorTiming::fast(),
        ..Default::default()
    })
}

#[test]
#[ignore = "soak: run with --ignored"]
fn sieve_first_500_primes() {
    // ~500 dynamically-spawned Modulo processes.
    let net = fast_net();
    let out = first_primes(&net, 500, &GraphOptions::default());
    let report = net.run().unwrap();
    let primes = out.lock().unwrap();
    let reference: Vec<i64> = primes_reference(4000).into_iter().take(500).collect();
    assert_eq!(*primes, reference);
    assert!(report.processes_run >= 500);
}

#[test]
#[ignore = "soak: run with --ignored"]
fn hamming_5000_values_with_starved_channels() {
    let net = fast_net();
    let opts = GraphOptions {
        channel_capacity: 32,
        ..Default::default()
    };
    let out = hamming(&net, 5000, &opts);
    let report = net.run().unwrap();
    assert_eq!(*out.lock().unwrap(), hamming_reference(5000));
    assert!(report.monitor.growths > 0);
    // The growth log tells us the buffer demand Parks' procedure found.
    let max_cap = report
        .monitor
        .growth_log
        .iter()
        .map(|(_, _, new)| *new)
        .max()
        .unwrap();
    assert!(max_cap >= 64);
}

#[test]
#[ignore = "soak: run with --ignored"]
fn chaos_relay_20k_roundtrips_under_faults() {
    // Strict ping-pong rhythm sustained across hundreds of injected
    // resets/refusals: every value must come back, in order, exactly once.
    let profile = FaultProfile {
        mean_ops_between_faults: 300,
        refuse_connects: 1,
        max_faults: 250,
        ..FaultProfile::default()
    };
    let cluster =
        ChaosCluster::with_faults(2, 0x50AC_0001, profile, chaos_policy()).expect("cluster");
    let got = relay_history(&cluster, 20_000).expect("relay under faults");
    assert_eq!(got, (0..20_000).collect::<Vec<i64>>());
    assert!(cluster.injected() > 0, "fault schedule never fired");
}

#[test]
#[ignore = "soak: run with --ignored"]
fn chaos_sieve_2000_under_faults() {
    // The self-modifying sieve (hundreds of dynamically spawned Modulo
    // processes on the server) with its feed and output links under fire.
    let profile = FaultProfile {
        mean_ops_between_faults: 150,
        refuse_connects: 1,
        max_faults: 120,
        ..FaultProfile::default()
    };
    let cluster =
        ChaosCluster::with_faults(2, 0x50AC_0002, profile, chaos_policy()).expect("cluster");
    let primes = sieve_history(&cluster, 2000).expect("sieve under faults");
    assert_eq!(primes, primes_reference(2000));
    assert!(cluster.injected() > 0, "fault schedule never fired");
}

#[test]
#[ignore = "soak: run with --ignored"]
fn meta_dynamic_50k_tasks() {
    use kpn::parallel::{
        meta_dynamic, register_stock_tasks, synthetic_task_stream, Consumer, Producer,
        TaskEnvelope, TaskTypeRegistry,
    };
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let mut reg = TaskTypeRegistry::new();
    register_stock_tasks(&mut reg);
    let reg = reg.into_shared();
    let net = fast_net();
    let (tw, tr) = net.channel();
    let (rw, rr) = net.channel();
    const TASKS: u64 = 50_000;
    net.add(Producer::new(synthetic_task_stream(TASKS, 0.0), tw));
    meta_dynamic(&net, reg, &[1.0, 2.0, 0.5, 1.5], tr, rw);
    let count = Arc::new(AtomicU64::new(0));
    let c = count.clone();
    let expected = Arc::new(AtomicU64::new(0));
    let e = expected.clone();
    net.add(Consumer::new(rr, move |env: TaskEnvelope| {
        let seq = env.unpack::<u64>()?;
        // Task order must be exact over the whole run.
        assert_eq!(seq, e.fetch_add(1, Ordering::SeqCst));
        c.fetch_add(1, Ordering::SeqCst);
        Ok(true)
    }));
    net.run().unwrap();
    assert_eq!(count.load(Ordering::SeqCst), TASKS);
}
