//! Fidelity tests written in the *shape* of the paper's own code:
//! Figure 6's graph construction with `Channel` objects, and §3.2's
//! composite-of-composites hierarchy.

use kpn::core::stdlib::{Add, Collect, Cons, Constant, Duplicate};
use kpn::core::{Channel, CompositeProcess, IterativeProcess, Network};
use std::sync::{Arc, Mutex};

#[test]
fn figure_6_verbatim_construction() {
    // Figure 6, line for line: nine channels, a CompositeProcess, and one
    // `new Thread(p).start()` — here `net.add_process` + `net.run`.
    let mut ab = Channel::new();
    let mut be = Channel::new();
    let mut cd = Channel::new();
    let mut df = Channel::new();
    let mut ed = Channel::new();
    let mut eg = Channel::new();
    let mut fg = Channel::new();
    let mut fh = Channel::new();
    let mut gb = Channel::new();

    let out = Arc::new(Mutex::new(Vec::new()));
    let mut p = CompositeProcess::new("fibonacci");
    p.add_iterative(Constant::new(1, ab.writer()).with_limit(1));
    p.add_iterative(Cons::new(ab.reader(), gb.reader(), be.writer()));
    p.add_iterative(Duplicate::two(be.reader(), ed.writer(), eg.writer()));
    p.add_iterative(Add::new(eg.reader(), fg.reader(), gb.writer()));
    p.add_iterative(Constant::new(1, cd.writer()).with_limit(1));
    p.add_iterative(Cons::new(cd.reader(), ed.reader(), df.writer()));
    p.add_iterative(Duplicate::two(df.reader(), fh.writer(), fg.writer()));
    p.add_iterative(Collect::new(fh.reader(), out.clone()).with_limit(20));

    let net = Network::new();
    net.add_process(Box::new(p));
    net.run().unwrap();
    assert_eq!(
        *out.lock().unwrap(),
        kpn::core::graphs::fibonacci_reference(20)
    );
}

#[test]
fn composites_nest_without_deadlock() {
    // §3.2: "we retain a separate thread for each process within a
    // CompositeProcess to avoid introducing deadlock through composition."
    // A two-deep hierarchy where the inner pipeline only makes progress if
    // every component really has its own thread.
    let net = Network::new();
    let (aw, ar) = net.channel_with_capacity(16);
    let (bw, br) = net.channel_with_capacity(16);
    let (cw, cr) = net.channel_with_capacity(16);
    let out = Arc::new(Mutex::new(Vec::new()));

    let mut inner = CompositeProcess::new("inner-pipeline");
    inner.add_iterative(kpn::core::stdlib::Scale::new(2, ar, bw));
    inner.add_iterative(kpn::core::stdlib::Scale::new(5, br, cw));

    let mut outer = CompositeProcess::new("outer");
    outer.add_iterative(kpn::core::stdlib::Sequence::new(0, 200, aw));
    outer.add(Box::new(inner));
    outer.add(Box::new(IterativeProcess::new(Collect::new(
        cr,
        out.clone(),
    ))));

    net.add_process(Box::new(outer));
    let report = net.run().unwrap();
    assert_eq!(
        *out.lock().unwrap(),
        (0..200).map(|i| i * 10).collect::<Vec<i64>>()
    );
    // outer + inner + 4 leaf processes all got their own threads.
    assert_eq!(report.processes_run, 6);
}
