//! Schedule-exploration acceptance tests for the deterministic simulation
//! scheduler (`kpn::core::sim`).
//!
//! The paper's determinacy claim (§2) is quantified over *all* schedules;
//! real threads only ever sample one. These tests run the paper's example
//! graphs under 100+ seeded schedules plus a bounded DFS over preemption
//! points and require the channel histories to agree — bit-identical for
//! fully-drained graphs ([`HistoryCheck::Exact`]), prefix-ordered for
//! graphs cut by a sink limit ([`HistoryCheck::PrefixClosed`]) — including
//! through the sieve's dynamic reconfiguration (Sift growing its Modulo
//! chain), Figure 9/10 self-removing-Cons splices, and artificial-deadlock
//! channel growth. A deliberately racy graph shows the oracle *can* fail:
//! the breaking schedule is caught, printed, and replays exactly from its
//! seed or decision list.

use kpn::core::graphs::{
    fibonacci, fibonacci_reference, hamming, hamming_reference, primes_below, primes_reference,
    GraphOptions,
};
use kpn::core::stdlib::{Collect, Scale, Sequence};
use kpn::core::{
    check_determinacy, compare_histories, explore_dfs, run_sim, HistoryCheck, Network, Result,
    SchedulePolicy, SimRun,
};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};

/// Base seed for the random-walk matrices. CI pins a different
/// `SIM_SEED_BASE` per matrix row, so rows explore different schedule sets
/// while each row stays bit-reproducible.
fn seed_base() -> u64 {
    std::env::var("SIM_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xA5EED)
}

/// `n` seeded random-walk policies starting at the pinned base.
fn seeds(n: u64) -> impl Iterator<Item = SchedulePolicy> {
    let base = seed_base();
    (0..n).map(move |i| SchedulePolicy::RandomWalk {
        seed: base.wrapping_add(i),
    })
}

/// Runs `build` under `policy` and returns the run plus the graph's
/// collected output (the builder's collector, read after the run).
fn capture<T: Clone + Send + 'static>(
    policy: SchedulePolicy,
    build: impl FnOnce(&Network) -> Arc<Mutex<Vec<T>>>,
) -> Result<(SimRun, Vec<T>)> {
    let slot = Arc::new(Mutex::new(None));
    let keep = slot.clone();
    let run = run_sim(policy, move |net| {
        *keep.lock().unwrap() = Some(build(net));
    })?;
    let out = slot.lock().unwrap().take().expect("build ran");
    let v = out.lock().unwrap().clone();
    Ok((run, v))
}

/// The sieve drains fully (§3.4 mode 1) *and* reconfigures itself as Sift
/// grows its Modulo chain — every schedule must reproduce every channel
/// byte-for-byte, splices included.
#[test]
fn sieve_histories_bit_identical_across_100_schedules() {
    let reference = primes_reference(40);
    let opts = GraphOptions {
        channel_capacity: 8,
        self_removing_cons: false,
    };
    let distinct = check_determinacy(seeds(112), HistoryCheck::Exact, |policy| {
        let (run, out) = capture(policy, |net| primes_below(net, 40, &opts))?;
        assert_eq!(out, reference, "sieve output diverged from reference");
        Ok(run)
    })
    .expect("sieve determinacy");
    assert!(
        distinct >= 100,
        "only {distinct} distinct schedules explored"
    );
}

/// Hamming's feedback loop needs monitor-driven channel growth at this
/// capacity, and terminates by sink limit (§3.4 mode 2), so histories are
/// prefix-ordered across schedules while the collected output is exact.
#[test]
fn hamming_histories_agree_across_100_schedules() {
    let reference = hamming_reference(30);
    let opts = GraphOptions {
        channel_capacity: 16,
        self_removing_cons: false,
    };
    let distinct = check_determinacy(seeds(112), HistoryCheck::PrefixClosed, |policy| {
        let (run, out) = capture(policy, |net| hamming(net, 30, &opts))?;
        assert_eq!(out, reference, "hamming output diverged from reference");
        Ok(run)
    })
    .expect("hamming determinacy");
    assert!(
        distinct >= 100,
        "only {distinct} distinct schedules explored"
    );
}

/// Figure 9/10: the self-removing Cons processes splice themselves out of
/// the Fibonacci graph mid-run. The splice point depends on the schedule;
/// the streams must not.
#[test]
fn reconfiguring_fibonacci_agrees_across_100_schedules() {
    let reference = fibonacci_reference(25);
    let opts = GraphOptions {
        channel_capacity: 16,
        self_removing_cons: true,
    };
    let distinct = check_determinacy(seeds(112), HistoryCheck::PrefixClosed, |policy| {
        let (run, out) = capture(policy, |net| fibonacci(net, 25, &opts))?;
        assert_eq!(out, reference, "fibonacci output diverged from reference");
        Ok(run)
    })
    .expect("fibonacci determinacy");
    assert!(
        distinct >= 100,
        "only {distinct} distinct schedules explored"
    );
}

/// Bounded DFS over preemption points: systematic rather than sampled
/// coverage of a small pipeline's schedule space. Every generated prefix
/// ends in an untaken alternative, so each run is a distinct schedule.
#[test]
fn dfs_systematically_explores_distinct_schedules() {
    let reference: Vec<i64> = (0..12).map(|v| v * 3).collect();
    let report = explore_dfs(120, 64, HistoryCheck::Exact, |policy| {
        let (run, out) = capture(policy, |net| {
            let (aw, ar) = net.channel_with_capacity(4);
            let (bw, br) = net.channel_with_capacity(4);
            net.add(Sequence::new(0, 12, aw));
            net.add(Scale::new(3, ar, bw));
            let out = Arc::new(Mutex::new(Vec::new()));
            net.add(Collect::new(br, out.clone()));
            out
        })?;
        assert_eq!(out, reference, "pipeline output diverged");
        Ok(run)
    })
    .expect("DFS determinacy");
    assert_eq!(
        report.distinct, report.runs,
        "DFS must never execute the same schedule twice"
    );
    assert!(
        report.distinct >= 100,
        "only {} distinct schedules explored",
        report.distinct
    );
}

/// A deliberately broken "channel": two processes share a mutable counter
/// outside any channel (exactly what Kahn forbids) and record what they
/// saw. Which values each process observes depends on the interleaving,
/// so some pair of schedules must disagree.
fn racy_run(policy: SchedulePolicy) -> Result<SimRun> {
    run_sim(policy, |net| {
        let counter = Arc::new(AtomicI64::new(0));
        for name in ["racer-a", "racer-b"] {
            let (w, r) = net.channel_with_capacity(256);
            let c = Arc::clone(&counter);
            net.add_fn(name, move |_ctx| {
                let mut w = w;
                for _ in 0..6 {
                    let v = c.fetch_add(1, Ordering::SeqCst);
                    w.write_all(&v.to_le_bytes())?;
                }
                Ok(())
            });
            net.add(Collect::new(r, Arc::new(Mutex::new(Vec::new()))));
        }
    })
}

/// The oracle must catch an injected determinacy bug, report the breaking
/// schedule, and that schedule must replay bit-identically from either the
/// printed seed or the recorded decision list.
#[test]
fn injected_race_is_caught_and_its_schedule_replays() {
    let baseline = racy_run(SchedulePolicy::RandomWalk { seed: 1 }).expect("racy run");
    let mut breaking = None;
    for seed in 2..66 {
        let run = racy_run(SchedulePolicy::RandomWalk { seed }).expect("racy run");
        if compare_histories(&baseline.histories, &run.histories, HistoryCheck::Exact).is_err() {
            breaking = Some(run);
            break;
        }
    }
    let breaking = breaking.expect("the injected race never surfaced across 64 schedules");
    let seed = breaking.trace.seed.expect("random walks record their seed");

    // check_determinacy reports the bug and embeds both schedules.
    let err = check_determinacy(
        [
            SchedulePolicy::RandomWalk { seed: 1 },
            SchedulePolicy::RandomWalk { seed },
        ],
        HistoryCheck::Exact,
        racy_run,
    )
    .expect_err("oracle must catch the injected race");
    let msg = err.to_string();
    assert!(msg.contains("determinacy broken"), "unexpected: {msg}");
    assert!(
        msg.contains("schedule"),
        "message must include the failing schedule: {msg}"
    );

    // Replaying the printed seed reproduces the failure exactly...
    let again = racy_run(SchedulePolicy::RandomWalk { seed }).expect("replay by seed");
    assert_eq!(again.trace.decisions, breaking.trace.decisions);
    assert_eq!(again.histories, breaking.histories);

    // ...and so does the recorded decision list, seed or no seed.
    let replay =
        racy_run(SchedulePolicy::Replay(breaking.trace.decisions.clone())).expect("replay");
    assert_eq!(replay.histories, breaking.histories);
}
