//! Exec-matrix acceptance tests: the same program graphs under all three
//! executors — one thread per process (the paper's model), the pooled
//! executor multiplexing processes onto a fixed worker set, and the
//! deterministic simulation scheduler — must produce the same per-channel
//! byte histories. This is the Kahn determinacy claim (§2) quantified over
//! *executors* rather than schedules: the history of every channel depends
//! only on the graph, never on how its processes are mapped to OS threads.
//!
//! History keys come from the executor's task-identity layer, so the keying
//! is itself mode-independent (a channel created by the process `sift` is
//! `("sift", n)` under every executor).

use kpn::core::graphs::{
    fibonacci, fibonacci_reference, hamming, hamming_reference, primes_below, primes_reference,
    GraphOptions,
};
use kpn::core::{
    compare_histories, ChannelKey, Error, ExecMode, HistoryCheck, MonitorTiming, Network,
    NetworkConfig, SchedulePolicy, SimScheduler,
};
use std::sync::{Arc, Mutex};

/// Runs `build` to completion under `mode` with history recording on, and
/// returns (histories, collected output).
fn run_mode<T: Clone + Send + 'static>(
    mode: ExecMode,
    build: impl FnOnce(&Network) -> Arc<Mutex<Vec<T>>>,
) -> (Vec<(ChannelKey, Vec<u8>)>, Vec<T>) {
    let net = Network::with_config(NetworkConfig {
        mode,
        monitor_timing: MonitorTiming::fast(),
        record_history: true,
        ..Default::default()
    });
    let out = build(&net);
    net.run().expect("network run");
    let hist = net.histories().expect("record_history was set");
    let v = out.lock().unwrap().clone();
    (hist, v)
}

/// The modes of the matrix. The pool runs at one, two, and four workers:
/// one worker serializes everything through the hot-slot/local-deque path,
/// two gives fewer workers than processes (the regime where continuation
/// parking must carry the blocking semantics), and four adds real steal
/// traffic between per-worker run queues.
fn modes() -> Vec<(&'static str, ExecMode)> {
    vec![
        ("thread", ExecMode::Thread),
        ("pooled:1", ExecMode::Pooled { workers: 1 }),
        ("pooled:2", ExecMode::Pooled { workers: 2 }),
        ("pooled:4", ExecMode::Pooled { workers: 4 }),
        (
            "sim",
            ExecMode::Sim(SimScheduler::new(SchedulePolicy::RandomWalk { seed: 7 })),
        ),
    ]
}

/// Per-channel byte histories labelled with the mode that produced them.
type LabelledHistories = (&'static str, Vec<(ChannelKey, Vec<u8>)>);

/// Runs the graph under every mode and requires pairwise-agreeing
/// histories (under `check`) plus reference-equal collected output.
fn assert_matrix<T: Clone + PartialEq + std::fmt::Debug + Send + 'static>(
    check: HistoryCheck,
    reference: &[T],
    build: impl Fn(&Network) -> Arc<Mutex<Vec<T>>>,
) {
    let mut baseline: Option<LabelledHistories> = None;
    for (name, mode) in modes() {
        let (hist, out) = run_mode(mode, &build);
        assert_eq!(out, reference, "{name}: output diverged from reference");
        match &baseline {
            None => baseline = Some((name, hist)),
            Some((base_name, base)) => {
                compare_histories(base, &hist, check).unwrap_or_else(|e| {
                    panic!("histories diverge between {base_name} and {name}: {e}")
                });
            }
        }
    }
}

/// The sieve drains fully (§3.4 mode 1) *and* reconfigures itself as Sift
/// grows its Modulo chain — every executor must reproduce every channel
/// byte-for-byte, dynamically created channels included.
#[test]
fn sieve_histories_identical_across_executors() {
    let opts = GraphOptions {
        channel_capacity: 8,
        self_removing_cons: false,
    };
    assert_matrix(HistoryCheck::Exact, &primes_reference(60), |net| {
        primes_below(net, 60, &opts)
    });
}

/// Hamming's feedback loop needs monitor-driven channel growth at this
/// capacity and terminates by sink limit (§3.4 mode 2): histories are
/// prefix-ordered across executors while the collected output is exact.
#[test]
fn hamming_histories_agree_across_executors() {
    let opts = GraphOptions {
        channel_capacity: 16,
        self_removing_cons: false,
    };
    assert_matrix(HistoryCheck::PrefixClosed, &hamming_reference(30), |net| {
        hamming(net, 30, &opts)
    });
}

/// Figure 9/10: self-removing Cons processes splice themselves out of the
/// Fibonacci graph mid-run. The splice point depends on scheduling — and
/// therefore on the executor — but the streams must not.
#[test]
fn self_removing_cons_agrees_across_executors() {
    let opts = GraphOptions {
        channel_capacity: 16,
        self_removing_cons: true,
    };
    assert_matrix(HistoryCheck::PrefixClosed, &fibonacci_reference(25), |net| {
        fibonacci(net, 25, &opts)
    });
}

/// A 10,000-stage pipeline must complete on a two-worker pool: processes
/// are parked continuations, not threads, so the pool multiplexes all ten
/// thousand of them without exhausting OS resources.
#[test]
fn ten_thousand_process_pipeline_on_two_workers() {
    use kpn::core::stdlib::{Collect, Scale, Sequence};
    const STAGES: usize = 10_000;
    const TOKENS: i64 = 25;

    let net = Network::with_config(NetworkConfig {
        mode: ExecMode::Pooled { workers: 2 },
        monitor_timing: MonitorTiming::fast(),
        ..Default::default()
    });
    let (head_w, mut tail_r) = net.channel_with_capacity(64);
    net.add(Sequence::new(0, TOKENS as u64, head_w));
    for _ in 0..STAGES {
        let (w, r) = net.channel_with_capacity(64);
        net.add(Scale::new(1, tail_r, w));
        tail_r = r;
    }
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Collect::new(tail_r, out.clone()));
    let report = net.run().expect("pipeline run");
    assert_eq!(report.processes_run, STAGES + 2);
    let expected: Vec<i64> = (0..TOKENS).collect();
    assert_eq!(*out.lock().unwrap(), expected);
}

/// A cyclic topology under the matrix: a LOCAL-model gossip algorithm on
/// a ring, where every edge is a two-channel feedback pair. Unlike the
/// pipelines above, *every* channel here is part of a cycle, so this pins
/// history equality for the round-synchronous adapter (`kpn::dist`) over
/// graphs the paper's examples never exercise. Histories are exact: every
/// round's messages are fully consumed, and all nodes stop in the same
/// round.
#[test]
fn ring_gossip_histories_identical_across_executors() {
    use kpn::dist::{build_network, ring, simulate, GossipMax};
    const N: usize = 10;
    const ROUNDS: u64 = 5; // the ring's radius: the max reaches everyone
    let g = ring(N).unwrap();
    let ids: Vec<u64> = (0..N as u64).collect();
    let reference = simulate::<GossipMax>(&g, &ids, ROUNDS).unwrap();
    assert_eq!(reference, vec![N as u64 - 1; N]);
    assert_matrix(HistoryCheck::Exact, &reference, |net| {
        build_network::<GossipMax>(net, &g, &ids, ROUNDS, 16).unwrap()
    });
}

/// Blocking on a simulation network's channel from a foreign thread must
/// fail loudly instead of degrading to a timed spin: the simulation's
/// determinism guarantee cannot cover a thread the scheduler does not own.
#[test]
fn cross_executor_blocking_is_rejected() {
    let sched = SimScheduler::new(SchedulePolicy::RandomWalk { seed: 1 });
    let net = Network::with_config(NetworkConfig {
        mode: ExecMode::Sim(sched),
        ..Default::default()
    });
    let (_w, mut r) = net.channel();
    // The channel is empty and its writer is alive, so this read must
    // block — and blocking from outside the simulation is an error.
    let mut buf = [0u8; 1];
    match r.read(&mut buf) {
        Err(Error::Graph(msg)) => {
            assert!(
                msg.contains("cross-executor"),
                "unexpected message: {msg}"
            );
        }
        other => panic!("expected cross-executor rejection, got {other:?}"),
    }
}
