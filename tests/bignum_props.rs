//! Correctness battery for `kpn-bignum`'s modular kernels.
//!
//! Two layers:
//!
//! 1. **Differential sweeps** — the Montgomery CIOS kernel against the
//!    division-based oracle (`modpow_div` / `mulmod_div`) over seeded
//!    random odd moduli, concentrated on the limb sizes where carry and
//!    threshold bugs live: 1 limb (everything in one word), 23/24/25
//!    limbs (straddling the Karatsuba dispatch the oracle's multiply
//!    uses), and 64 limbs (deep recursion). The sweeps total more than
//!    10⁴ modpow comparisons; `BIGNUM_PROP_SEED` pins the generator (CI
//!    sets it explicitly, the default matches CI).
//! 2. **Adversarial fixtures** — inputs chosen because a wrong
//!    Miller-Rabin would accept them: Carmichael numbers (Fermat-test
//!    killers), base-2 Fermat and strong pseudoprimes, the
//!    Sorenson–Webster strong pseudoprimes ψ₉/ψ₁₂/ψ₁₃ that sit at the
//!    deterministic-witness bound, prime squares, and known Mersenne
//!    primes. Every fixture is pinned against BOTH kernels (Montgomery
//!    and the division fallback), so a divergence between the paths
//!    fails even if both were self-consistently wrong.

use kpn::bignum::{BigUint, DiffTester, Montgomery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seed for the random sweeps; override with `BIGNUM_PROP_SEED=<u64>`.
fn sweep_rng(salt: u64) -> StdRng {
    let base: u64 = std::env::var("BIGNUM_PROP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xB16_5EED);
    StdRng::seed_from_u64(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn random_limbs(k: usize, rng: &mut StdRng) -> Vec<u64> {
    (0..k).map(|_| rng.random()).collect()
}

/// A random odd modulus of exactly `k` limbs (> 1).
fn random_odd_modulus(k: usize, rng: &mut StdRng) -> BigUint {
    let mut limbs = random_limbs(k, rng);
    limbs[0] |= 1;
    let last = k - 1;
    limbs[last] |= 1 << 63; // full width
    let n = BigUint::from_limbs(limbs);
    debug_assert!(!n.is_one());
    n
}

fn random_value(k: usize, rng: &mut StdRng) -> BigUint {
    BigUint::from_limbs(random_limbs(k, rng))
}

// ---- differential sweeps -------------------------------------------------

/// The acceptance-criteria sweep: ≥ 10⁴ Montgomery-vs-oracle modpow
/// comparisons across the limb-size boundary set. Exponent widths shrink
/// as the modulus grows so the battery stays fast in debug builds; the
/// case counts per size are chosen to sum past 10_000.
#[test]
fn montgomery_modpow_matches_division_oracle_10k() {
    // (modulus limbs, exponent limbs, cases)
    let plan: [(usize, usize, usize); 7] = [
        (1, 1, 4000),
        (2, 1, 2500),
        (3, 2, 2000),
        (23, 1, 500),
        (24, 1, 500),
        (25, 1, 500),
        (64, 1, 100),
    ];
    let mut total = 0usize;
    for (mi, &(k, ek, cases)) in plan.iter().enumerate() {
        let mut rng = sweep_rng(mi as u64);
        for case in 0..cases {
            let n = random_odd_modulus(k, &mut rng);
            let base = random_value(k + case % 2, &mut rng); // also unreduced bases
            let exp = random_value(ek, &mut rng);
            let mont = base.modpow(&exp, &n);
            let oracle = base.modpow_div(&exp, &n);
            assert_eq!(
                mont, oracle,
                "modpow diverged: k={k} case={case} n={n} base={base} exp={exp}"
            );
            total += 1;
        }
    }
    assert!(total >= 10_000, "sweep shrank below the acceptance bar");
}

#[test]
fn montgomery_mulmod_matches_division_oracle() {
    for (mi, k) in [1usize, 2, 3, 23, 24, 25, 64].into_iter().enumerate() {
        let mut rng = sweep_rng(0x100 + mi as u64);
        let cases = if k >= 23 { 100 } else { 600 };
        for case in 0..cases {
            let n = random_odd_modulus(k, &mut rng);
            // Unreduced operands up to 2k limbs exercise the reduction-in.
            let a = random_value(k + case % 3, &mut rng);
            let b = random_value(k.max(2) - 1 + case % 2, &mut rng);
            assert_eq!(
                a.mulmod(&b, &n),
                a.mulmod_div(&b, &n),
                "mulmod diverged: k={k} case={case}"
            );
        }
    }
}

#[test]
fn mulmod_dispatch_agrees_on_even_moduli_too() {
    // Even moduli take the division path outright; the public API must
    // stay correct on both parities.
    let mut rng = sweep_rng(0x200);
    for _ in 0..500 {
        let mut limbs = random_limbs(2, &mut rng);
        limbs[0] &= !1; // even
        let n = BigUint::from_limbs(limbs).add_u64(2);
        let a = random_value(3, &mut rng);
        let b = random_value(2, &mut rng);
        assert_eq!(a.mulmod(&b, &n), a.mul(&b).rem(&n));
        let e = BigUint::from_u64(rng.random::<u16>() as u64);
        assert_eq!(a.modpow(&e, &n), a.modpow_div(&e, &n));
    }
}

#[test]
fn to_from_montgomery_is_identity() {
    for (mi, k) in [1usize, 2, 23, 24, 25, 64].into_iter().enumerate() {
        let mut rng = sweep_rng(0x300 + mi as u64);
        let n = random_odd_modulus(k, &mut rng);
        let ctx = Montgomery::new(&n).expect("odd modulus");
        for case in 0..200 {
            // Both reduced and unreduced inputs: to_montgomery reduces.
            let x = random_value(k + case % 2, &mut rng);
            let roundtrip = ctx.from_montgomery(&ctx.to_montgomery(&x));
            assert_eq!(roundtrip, x.rem(&n), "k={k} case={case}");
        }
        // The Montgomery form of 1 is R mod n.
        assert_eq!(ctx.from_montgomery(&ctx.one_m()), BigUint::one().rem(&n));
    }
}

#[test]
fn montgomery_rejects_even_or_trivial_moduli() {
    assert!(Montgomery::new(&BigUint::zero()).is_none());
    assert!(Montgomery::new(&BigUint::one()).is_none());
    assert!(Montgomery::new(&BigUint::from_u64(1 << 20)).is_none());
    assert!(Montgomery::new(&BigUint::from_u64((1 << 20) + 1)).is_some());
}

// ---- perfect squares -----------------------------------------------------

#[test]
fn perfect_sqrt_roundtrips_squares_and_rejects_off_by_one() {
    for (mi, k) in [1usize, 2, 4, 9, 16].into_iter().enumerate() {
        let mut rng = sweep_rng(0x400 + mi as u64);
        for _ in 0..150 {
            let mut x = random_value(k, &mut rng);
            if x < BigUint::from_u64(2) {
                x = x.add_u64(2); // keep x² ± 1 strictly between neighbours
            }
            let sq = x.mul(&x);
            assert_eq!(sq.perfect_sqrt(), Some(x.clone()), "square of {x}");
            assert_eq!(sq.add_u64(1).perfect_sqrt(), None, "x²+1 for {x}");
            assert_eq!(
                sq.sub(&BigUint::one()).perfect_sqrt(),
                None,
                "x²-1 for {x}"
            );
        }
    }
}

#[test]
fn diff_tester_filters_are_sound() {
    // The quadratic-residue prefilters may only reject candidates whose
    // discriminant is a non-square: a planted factor must always be found,
    // and the filtered tester must agree with a filter-free reference.
    let mut rng = sweep_rng(0x500);
    for case in 0..120 {
        let bits = 64 + (case % 5) * 32;
        let p = BigUint::gen_prime(bits as u64, &mut rng);
        let d = (rng.random::<u16>() as u64) & !1;
        let n = p.mul(&p.add_u64(d));
        let tester = DiffTester::new(&n);
        assert_eq!(tester.test(d), Some(p.clone()), "planted d={d}");
        // A filter-free reference for a miss and for the hit.
        for probe in [d, d.wrapping_add(2), d.wrapping_add(40) & !1] {
            let disc = BigUint::from_u64(probe)
                .mul(&BigUint::from_u64(probe))
                .add(&n.shl(2));
            let reference = disc.perfect_sqrt().and_then(|s| {
                let diff = s.checked_sub(&BigUint::from_u64(probe))?;
                if !diff.is_even() {
                    return None;
                }
                let p = diff.shr(1);
                (!p.is_zero() && p.mul(&p.add_u64(probe)) == n).then_some(p)
            });
            assert_eq!(tester.test(probe), reference, "probe={probe}");
        }
    }
}

// ---- Miller-Rabin adversarial fixtures ------------------------------------

/// Asserts both kernels (Montgomery default + division fallback) agree
/// with the expected verdict.
fn assert_prime_verdict(decimal: &str, expect_prime: bool, label: &str) {
    let n = BigUint::from_decimal(decimal).unwrap_or_else(|| panic!("bad fixture {label}"));
    let mut rng = sweep_rng(0x600);
    assert_eq!(
        n.is_probable_prime(16, &mut rng),
        expect_prime,
        "{label} ({decimal}): Montgomery path"
    );
    let mut rng = sweep_rng(0x600);
    assert_eq!(
        n.is_probable_prime_div(16, &mut rng),
        expect_prime,
        "{label} ({decimal}): division path"
    );
}

#[test]
fn carmichael_numbers_are_rejected() {
    // Classic Carmichaels, plus the Chernick-form (6m+1)(12m+1)(18m+1)
    // constructions — all pass the Fermat test for every coprime base, so
    // only a correct *strong* test rejects them.
    for (dec, label) in [
        ("561", "3·11·17"),
        ("1105", "5·13·17"),
        ("1729", "7·13·19 (Chernick m=1)"),
        ("2465", "5·17·29"),
        ("6601", "7·23·41"),
        ("41041", "7·11·13·41"),
        ("62745", "3·5·47·89"),
        ("825265", "5 prime factors"),
        ("294409", "37·73·109 (Chernick m=6)"),
        ("56052361", "211·421·631 (Chernick m=35)"),
        ("118901521", "271·541·811 (Chernick m=45)"),
        ("172947529", "307·613·919 (Chernick m=51)"),
    ] {
        assert_prime_verdict(dec, false, label);
    }
}

#[test]
fn large_constructed_carmichael_is_rejected() {
    // Build a fresh Chernick Carmichael at runtime: if 6m+1, 12m+1 and
    // 18m+1 are all prime then their product is Carmichael. Hunting from
    // a 2^40-scale start makes the product ~128 bits — past every small
    // fixture and squarely in multi-limb Montgomery territory.
    let mut rng = sweep_rng(0x700);
    let mut m: u64 = 1 << 40;
    loop {
        // Chernick requires even m for the factors to be coprime to 2;
        // any m works for Korselt as long as all three are prime.
        let f1 = BigUint::from_u64(6 * m + 1);
        let f2 = BigUint::from_u64(12 * m + 1);
        let f3 = BigUint::from_u64(18 * m + 1);
        if f1.is_probable_prime(8, &mut rng)
            && f2.is_probable_prime(8, &mut rng)
            && f3.is_probable_prime(8, &mut rng)
        {
            let carmichael = f1.mul(&f2).mul(&f3);
            let mut rng2 = sweep_rng(0x701);
            assert!(
                !carmichael.is_probable_prime(16, &mut rng2),
                "Chernick m={m} product {carmichael} wrongly accepted (Montgomery)"
            );
            let mut rng2 = sweep_rng(0x701);
            assert!(
                !carmichael.is_probable_prime_div(16, &mut rng2),
                "Chernick m={m} product {carmichael} wrongly accepted (division)"
            );
            return;
        }
        m += 1;
        assert!(m < (1 << 40) + 200_000, "no Chernick triple found in range");
    }
}

#[test]
fn fermat_base2_pseudoprimes_are_rejected() {
    for dec in [
        "341", "645", "1387", "1905", "2047", "2701", "2821", "3277", "4033", "4681", "8321",
    ] {
        assert_prime_verdict(dec, false, "Fermat/strong psp base 2");
    }
}

#[test]
fn strong_pseudoprimes_at_the_deterministic_witness_bound() {
    // ψ₄ = 3215031751: strong psp to bases 2,3,5,7 — witness 11 kills it.
    assert_prime_verdict("3215031751", false, "ψ₄");
    // ψ₉ = 3825123056546413051: strong psp to the first 9 primes.
    assert_prime_verdict("3825123056546413051", false, "ψ₉");
    // ψ₁₂ = 318665857834031151167461: strong psp to the first 12 primes;
    // only witness 41 — the last deterministic one — catches it.
    assert_prime_verdict("318665857834031151167461", false, "ψ₁₂");
    // ψ₁₃ = 3317044064679887385961981: strong psp to ALL 13 deterministic
    // witnesses. Only the random-witness stage rejects it — this pins the
    // deterministic-bound cutoff (a "deterministic below 128 bits" rule
    // would certify this composite as prime).
    assert_prime_verdict("3317044064679887385961981", false, "ψ₁₃");
}

#[test]
fn known_large_primes_are_accepted() {
    // Mersenne primes M127, M521, M607 and the curve25519 prime 2^255-19:
    // independently known primes spanning 2 to 10 limbs (M521/M607 bracket
    // the 512-bit operating point of the §5.2 experiment).
    let fixtures: [(BigUint, &str); 4] = [
        (mersenne(127), "M127"),
        (mersenne(521), "M521"),
        (mersenne(607), "M607"),
        (
            BigUint::one().shl(255).sub(&BigUint::from_u64(19)),
            "2^255-19",
        ),
    ];
    for (p, label) in fixtures {
        let mut rng = sweep_rng(0x800);
        assert!(
            p.is_probable_prime(16, &mut rng),
            "{label} rejected (Montgomery)"
        );
        let mut rng = sweep_rng(0x800);
        assert!(
            p.is_probable_prime_div(16, &mut rng),
            "{label} rejected (division)"
        );
    }
}

#[test]
fn prime_squares_are_rejected() {
    // n = p² passes naive Fermat checks surprisingly often and is the
    // √N = P corner of the factor search (d = 0).
    let mut rng = sweep_rng(0x900);
    for p in [
        mersenne(61),
        mersenne(127),
        BigUint::gen_prime(160, &mut rng),
    ] {
        let sq = p.mul(&p);
        let mut r = sweep_rng(0x901);
        assert!(!sq.is_probable_prime(16, &mut r), "{p}² accepted (Montgomery)");
        let mut r = sweep_rng(0x901);
        assert!(
            !sq.is_probable_prime_div(16, &mut r),
            "{p}² accepted (division)"
        );
    }
}

#[test]
fn generated_512_bit_primes_agree_across_kernels() {
    // gen_prime runs entirely through the Montgomery path; the division
    // oracle must independently accept its output (and the exact-width /
    // oddness contract must hold) at the paper's operating point.
    let mut rng = sweep_rng(0xA00);
    let p = BigUint::gen_prime(512, &mut rng);
    assert_eq!(p.bits(), 512);
    assert!(!p.is_even());
    let mut r = sweep_rng(0xA01);
    assert!(p.is_probable_prime_div(8, &mut r), "division path disagrees");
}

fn mersenne(e: u64) -> BigUint {
    BigUint::one().shl(e).sub(&BigUint::one())
}
