//! `kpn-server` — the generic compute server of §4.1 as a standalone
//! binary, the analogue of the paper's "single jar file that is less than
//! 8K bytes in size, making it easy to install on a new host".
//!
//! Start it on any machine; clients locate it by address (our substitute
//! for the RMI registry) and ship graph partitions to it with
//! [`kpn::net::ServerHandle::run_graph`].
//!
//! ```text
//! kpn-server [ADDR]           # default 0.0.0.0:7777
//! ```
//!
//! The server registers the full `kpn-core` standard library plus the
//! `kpn-parallel` processes (Worker, Scatter/Gather, Direct/Turnstile/
//! Select) with the stock task types, so it can host any partition the
//! examples and tests produce. It serves until it receives a `Shutdown`
//! control request.

use kpn::net::{Node, ProcessRegistry, TaskRegistry};
use kpn::parallel::{register_parallel_processes, register_stock_tasks, TaskTypeRegistry};

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "0.0.0.0:7777".to_string());

    let mut tasks = TaskTypeRegistry::new();
    register_stock_tasks(&mut tasks);
    let tasks = tasks.into_shared();
    let mut registry = ProcessRegistry::with_defaults();
    register_parallel_processes(&mut registry, tasks);

    let node = Node::serve_with(&addr, registry, TaskRegistry::new())
        .unwrap_or_else(|e| panic!("failed to bind {addr}: {e}"));
    // The OS may have picked the port (":0"); print the resolved address
    // so spawning harnesses can parse it.
    println!("kpn-server listening on {}", node.addr());

    // Serve until shut down: the control handler runs on acceptor threads;
    // this thread just parks, waking periodically to check for shutdown.
    loop {
        std::thread::sleep(std::time::Duration::from_millis(100));
        if node.is_shut_down() {
            // stderr: the launcher may have closed our stdout pipe already.
            eprintln!("kpn-server on {} shutting down", node.addr());
            return;
        }
    }
}
