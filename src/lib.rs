//! # rkpn — Distributed Kahn Process Networks in Rust
//!
//! Facade crate for the `rkpn` workspace, a reproduction of
//! *"Distributed Process Networks in Java"* (Parks, Roberts, Millman;
//! IPDPS/IPPS workshop, 2003).
//!
//! The workspace crates, re-exported here:
//!
//! * [`core`] — channels with blocking reads and bounded blocking writes,
//!   process & network machinery, dynamic reconfiguration, cascading
//!   termination, and Parks' bounded-scheduling deadlock monitor.
//! * [`codec`] — a compact binary serde format, the Java Object
//!   Serialization analogue used for channel tokens and graph shipping.
//! * [`bignum`] — arbitrary-precision unsigned integers and primality
//!   testing for the parallel-factorization application.
//! * [`net`] — TCP channel transport, compute servers, graph migration with
//!   automatic connection establishment and the redirect protocol.
//! * [`parallel`] — the embarrassingly-parallel framework: `Task`,
//!   Producer/Worker/Consumer, `MetaStatic` and `MetaDynamic` schemas.
//! * [`cluster`] — the heterogeneous cluster model used by the paper's
//!   evaluation (CPU classes A–E, 34-CPU inventory, ideal speedup).
//! * [`sdf`] — synchronous dataflow, the statically-schedulable special
//!   case of process networks the paper references (§1): repetition
//!   vectors, periodic schedules, and exact buffer bounds executed on the
//!   KPN runtime.
//! * [`lint`] — the static network verifier: the SDF-delegating L005 lint
//!   pass (install with `kpn::lint::install()`) and the pre-deployment
//!   graph-spec checker behind the `kpn-lint` binary. The structural
//!   checks L001–L004 live in [`core`] and run on every network according
//!   to `NetworkConfig::lint` / the `KPN_LINT` environment variable.
//! * [`dist`] — distributed-algorithm workloads: round-synchronous
//!   execution of PN/LOCAL-model algorithms (bipartite maximal matching,
//!   vertex-cover 3-approximation, gossip) on generated or Graphviz-DOT
//!   topologies, with a lockstep reference simulator and the `kpn-dist`
//!   CLI (`gen` / `run` / `export`).
//!
//! ## Quickstart
//!
//! ```
//! use kpn::core::{Network, stdlib::{Sequence, Scale, Collect}};
//! use std::sync::{Arc, Mutex};
//!
//! let net = Network::new();
//! let (aw, ar) = net.channel();
//! let (bw, br) = net.channel();
//! let out = Arc::new(Mutex::new(Vec::new()));
//! net.add(Sequence::new(0, 10, aw));
//! net.add(Scale::new(3, ar, bw));
//! net.add(Collect::new(br, out.clone()));
//! net.run().unwrap();
//! assert_eq!(*out.lock().unwrap(), (0..10).map(|x| 3 * x).collect::<Vec<i64>>());
//! ```

pub use kpn_bignum as bignum;
pub use kpn_cluster as cluster;
pub use kpn_codec as codec;
pub use kpn_core as core;
pub use kpn_dist as dist;
pub use kpn_lint as lint;
pub use kpn_net as net;
pub use kpn_parallel as parallel;
pub use kpn_sdf as sdf;
